#include <gtest/gtest.h>

#include "moo/baselines.hpp"
#include "moo/nsga2.hpp"
#include "moo/spea2.hpp"

namespace rrsn::moo {
namespace {

/// Small random-but-fixed knapsack instance.
LinearBiProblem smallProblem(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  LinearBiProblem p;
  for (std::size_t i = 0; i < n; ++i) {
    p.cost.push_back(static_cast<std::uint64_t>(rng.range(1, 9)));
    p.gain.push_back(static_cast<std::uint64_t>(rng.range(0, 50)));
  }
  return p;
}

// ------------------------------------------------------------ dominance

TEST(Dominance, Basics) {
  EXPECT_TRUE(dominates({1, 1}, {2, 2}));
  EXPECT_TRUE(dominates({1, 2}, {2, 2}));
  EXPECT_TRUE(dominates({2, 1}, {2, 2}));
  EXPECT_FALSE(dominates({2, 2}, {2, 2}));  // equal: no strict improvement
  EXPECT_FALSE(dominates({1, 3}, {2, 2}));  // trade-off
  EXPECT_FALSE(dominates({3, 1}, {2, 2}));
}

// --------------------------------------------------------------- genome

TEST(Genome, ConstructionNormalizes) {
  const Genome g(10, {7, 3, 3, 9});
  EXPECT_EQ(g.indices(), (std::vector<std::uint32_t>{3, 7, 9}));
  EXPECT_TRUE(g.test(3));
  EXPECT_FALSE(g.test(4));
  EXPECT_THROW(Genome(5, {5}), Error);
}

TEST(Genome, FlipTogglesMembership) {
  Genome g(10);
  g.flip(4);
  EXPECT_TRUE(g.test(4));
  g.flip(4);
  EXPECT_FALSE(g.test(4));
  EXPECT_TRUE(std::is_sorted(g.indices().begin(), g.indices().end()));
}

TEST(Genome, CrossoverSplitsAtPoint) {
  const Genome a(10, {0, 1, 2, 3, 4});
  const Genome b(10, {5, 6, 7, 8, 9});
  const Genome c = Genome::crossover(a, b, 5);
  EXPECT_EQ(c.indices(), (std::vector<std::uint32_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  const Genome d = Genome::crossover(a, b, 0);
  EXPECT_EQ(d, b);
  const Genome e = Genome::crossover(a, b, 10);
  EXPECT_EQ(e, a);
}

TEST(Genome, CrossoverMatchesBitwiseDefinition) {
  Rng rng(3);
  for (int round = 0; round < 50; ++round) {
    const Genome a = Genome::random(64, 0.3, rng);
    const Genome b = Genome::random(64, 0.3, rng);
    const auto point = static_cast<std::size_t>(rng.below(65));
    const Genome c = Genome::crossover(a, b, point);
    for (std::uint32_t i = 0; i < 64; ++i) {
      const bool want = i < point ? a.test(i) : b.test(i);
      ASSERT_EQ(c.test(i), want) << "point=" << point << " i=" << i;
    }
  }
}

TEST(Genome, MutationKeepsInvariants) {
  Rng rng(5);
  Genome g = Genome::random(200, 0.2, rng);
  for (int round = 0; round < 30; ++round) {
    g.mutatePerBit(0.05, rng);
    const auto& ones = g.indices();
    ASSERT_TRUE(std::is_sorted(ones.begin(), ones.end()));
    ASSERT_TRUE(std::adjacent_find(ones.begin(), ones.end()) == ones.end());
    if (!ones.empty()) {
      ASSERT_LT(ones.back(), 200u);
    }
  }
}

TEST(Genome, MutationFlipRate) {
  Rng rng(11);
  const std::size_t bits = 10000;
  Genome g(bits);
  g.mutatePerBit(0.01, rng);
  // ~100 expected flips from the all-zero genome.
  EXPECT_GT(g.ones(), 50u);
  EXPECT_LT(g.ones(), 170u);
}

TEST(Genome, RandomDensity) {
  Rng rng(13);
  const Genome g = Genome::random(10000, 0.1, rng);
  EXPECT_GT(g.ones(), 800u);
  EXPECT_LT(g.ones(), 1200u);
}

TEST(Genome, EvaluateMatchesBruteForce) {
  Rng rng(17);
  const LinearBiProblem p = smallProblem(64, 2);
  const std::uint64_t total = p.damageTotal();
  for (int round = 0; round < 40; ++round) {
    const Genome g = Genome::random(64, rng.uniform(), rng);
    const Objectives obj = evaluate(p, g, total);
    std::uint64_t cost = 0, damage = 0;
    for (std::uint32_t i = 0; i < 64; ++i) {
      if (g.test(i)) cost += p.cost[i];
      else damage += p.gain[i];
    }
    ASSERT_EQ(obj.cost, cost);
    ASSERT_EQ(obj.damage, damage);
  }
}

// --------------------------------------------------------------- pareto

TEST(ParetoArchive, KeepsOnlyNondominated) {
  ParetoArchive arch;
  Individual a;
  a.obj = {10, 10};
  EXPECT_TRUE(arch.add(a));
  Individual worse;
  worse.obj = {11, 11};
  EXPECT_FALSE(arch.add(worse));
  Individual better;
  better.obj = {5, 5};
  EXPECT_TRUE(arch.add(better));
  EXPECT_EQ(arch.size(), 1u);  // {10,10} evicted
  Individual tradeoff;
  tradeoff.obj = {8, 6};
  EXPECT_FALSE(arch.add(tradeoff));  // dominated by {5,5}
  Individual other;
  other.obj = {2, 20};
  EXPECT_TRUE(arch.add(other));
  EXPECT_EQ(arch.size(), 2u);
  // Sorted by cost.
  EXPECT_EQ(arch.members()[0].obj.cost, 2u);
}

TEST(ParetoArchive, DuplicateObjectivesRejected) {
  ParetoArchive arch;
  Individual a;
  a.obj = {3, 3};
  EXPECT_TRUE(arch.add(a));
  EXPECT_FALSE(arch.add(a));
}

TEST(ParetoArchive, BoundedQueries) {
  ParetoArchive arch;
  for (std::uint64_t c = 1; c <= 5; ++c) {
    Individual ind;
    ind.obj = {c * 10, 100 - c * 15};
    arch.add(ind);
  }
  const auto cheap = arch.minCostWithDamageAtMost(55);
  ASSERT_TRUE(cheap.has_value());
  EXPECT_EQ(cheap->obj.cost, 30u);  // damage 55
  const auto best = arch.minDamageWithCostAtMost(35);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->obj.damage, 55u);
  EXPECT_FALSE(arch.minCostWithDamageAtMost(0).has_value());
  EXPECT_FALSE(arch.minDamageWithCostAtMost(5).has_value());
}

TEST(Front, NondominatedFrontCleans) {
  const auto front = nondominatedFront(
      {{3, 3}, {1, 5}, {5, 1}, {3, 3}, {2, 6}, {6, 6}});
  ASSERT_EQ(front.size(), 3u);
  EXPECT_EQ(front[0], (Objectives{1, 5}));
  EXPECT_EQ(front[1], (Objectives{3, 3}));
  EXPECT_EQ(front[2], (Objectives{5, 1}));
}

TEST(Metrics, Hypervolume2DKnownValue) {
  // Two points vs ref (10, 10): (2,6) spans 8*4=32; (5,3) adds 5*3=15.
  const double hv = hypervolume2D({{2, 6}, {5, 3}}, {10, 10});
  EXPECT_DOUBLE_EQ(hv, 47.0);
  EXPECT_DOUBLE_EQ(hypervolume2D({{10, 10}}, {10, 10}), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume2D({}, {10, 10}), 0.0);
}

TEST(Metrics, AdditiveEpsilon) {
  const std::vector<Objectives> exact{{0, 10}, {5, 5}, {10, 0}};
  EXPECT_DOUBLE_EQ(additiveEpsilon(exact, exact), 0.0);
  const std::vector<Objectives> shifted{{2, 12}, {7, 7}, {12, 2}};
  EXPECT_DOUBLE_EQ(additiveEpsilon(shifted, exact), 2.0);
  EXPECT_DOUBLE_EQ(additiveEpsilon(exact, shifted), 0.0);
}

// ------------------------------------------------------------ baselines

TEST(Baselines, GreedyFrontContainsEndpoints) {
  const LinearBiProblem p = smallProblem(32, 5);
  const RunResult res = greedyFront(p);
  ASSERT_FALSE(res.archive.empty());
  // Contains the empty solution...
  EXPECT_EQ(res.archive.members().front().obj.cost, 0u);
  EXPECT_EQ(res.archive.members().front().obj.damage, p.damageTotal());
  // ...and a solution with zero damage (everything useful hardened).
  EXPECT_EQ(res.archive.members().back().obj.damage, 0u);
}

TEST(Baselines, ExactFrontIsNondominatedAndAnchored) {
  const LinearBiProblem p = smallProblem(24, 7);
  const auto front = exactParetoFront(p);
  ASSERT_GE(front.size(), 2u);
  EXPECT_EQ(front.front().cost, 0u);
  EXPECT_EQ(front.front().damage, p.damageTotal());
  EXPECT_EQ(front.back().damage, 0u);
  for (std::size_t i = 0; i + 1 < front.size(); ++i) {
    EXPECT_LT(front[i].cost, front[i + 1].cost);
    EXPECT_GT(front[i].damage, front[i + 1].damage);
  }
}

TEST(Baselines, ExactFrontRejectsHugeInstances) {
  LinearBiProblem p;
  p.cost.assign(1000, 1000000);
  p.gain.assign(1000, 1);
  EXPECT_THROW(exactParetoFront(p), Error);
}

TEST(Baselines, GreedyNeverDominatesExact) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const LinearBiProblem p = smallProblem(20, seed);
    const auto exact = exactParetoFront(p);
    const RunResult greedy = greedyFront(p);
    for (const Individual& g : greedy.archive.members()) {
      for (const Objectives& e : exact) {
        ASSERT_FALSE(dominates(g.obj, e))
            << "greedy dominated the exact front (seed " << seed << ")";
      }
    }
  }
}

TEST(Baselines, RandomSearchProducesValidArchive) {
  const LinearBiProblem p = smallProblem(64, 9);
  const RunResult res = randomSearch(p, 500, 1);
  EXPECT_EQ(res.stats.evaluations, 500u);
  ASSERT_FALSE(res.archive.empty());
  // Archive is mutually nondominated.
  const auto& m = res.archive.members();
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      if (i != j) {
        ASSERT_FALSE(dominates(m[i].obj, m[j].obj));
      }
    }
  }
}

// --------------------------------------------------------------- SPEA-2

EvolutionOptions smallOptions(std::uint64_t seed) {
  EvolutionOptions opt;
  opt.populationSize = 40;
  opt.generations = 60;
  opt.seed = seed;
  return opt;
}

TEST(Spea2, ConvergesNearExactFront) {
  const LinearBiProblem p = smallProblem(24, 11);
  const auto exact = exactParetoFront(p);
  const RunResult res = runSpea2(p, smallOptions(1));
  ASSERT_FALSE(res.archive.empty());
  // The EA can never dominate the exact front...
  for (const Individual& ind : res.archive.members())
    for (const Objectives& e : exact) ASSERT_FALSE(dominates(ind.obj, e));
  // ...and should come close (small additive epsilon relative to scale).
  const double eps = additiveEpsilon(res.archive.front(), exact);
  EXPECT_LE(eps, 0.10 * static_cast<double>(p.damageTotal()));
}

TEST(Spea2, SurvivesPopulationOfOne) {
  // Regression: at generation 0 a population of 1 with an empty archive
  // makes the combined population a single member, so the k-NN pass had
  // no neighbor distances and `min(k, dist.size()) - 1` wrapped to
  // SIZE_MAX.  A lone member now gets maximum density instead.
  const LinearBiProblem p = smallProblem(8, 3);
  EvolutionOptions opt;
  opt.populationSize = 1;
  opt.generations = 4;
  opt.seed = 5;
  const RunResult res = runSpea2(p, opt);
  ASSERT_FALSE(res.archive.empty());
  for (const Individual& ind : res.archive.members())
    EXPECT_LE(ind.obj.cost, p.costTotal());
}

TEST(Spea2, DeterministicForSeed) {
  const LinearBiProblem p = smallProblem(24, 11);
  const auto a = runSpea2(p, smallOptions(7));
  const auto b = runSpea2(p, smallOptions(7));
  EXPECT_EQ(a.archive.front(), b.archive.front());
  const auto c = runSpea2(p, smallOptions(8));
  // Different seed: extremely unlikely to produce the identical front.
  EXPECT_NE(a.archive.front(), c.archive.front());
}

TEST(Spea2, ArchiveIsNondominatedAndAnchoredAtZeroCost) {
  const LinearBiProblem p = smallProblem(32, 13);
  const RunResult res = runSpea2(p, smallOptions(2));
  const auto& m = res.archive.members();
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      if (i != j) {
        ASSERT_FALSE(dominates(m[i].obj, m[j].obj));
      }
    }
  }
  // Individual 0 of the initial population is the empty genome, so the
  // (0, damageTotal) endpoint must survive in the archive.
  EXPECT_EQ(m.front().obj.cost, 0u);
}

TEST(Spea2, ProgressCallbackInvoked) {
  const LinearBiProblem p = smallProblem(16, 15);
  EvolutionOptions opt = smallOptions(3);
  opt.generations = 5;
  std::size_t calls = 0;
  runSpea2(p, opt, [&](std::size_t gen, const std::vector<Individual>&) {
    EXPECT_EQ(gen, calls);
    ++calls;
  });
  EXPECT_EQ(calls, 5u);
}

TEST(Spea2, StatsCountEvaluations) {
  const LinearBiProblem p = smallProblem(16, 15);
  EvolutionOptions opt = smallOptions(3);
  opt.generations = 10;
  const RunResult res = runSpea2(p, opt);
  EXPECT_EQ(res.stats.generations, 10u);
  EXPECT_EQ(res.stats.evaluations, 40u + 10u * 40u);
}

// --------------------------------------------------------------- NSGA-II

TEST(Nsga2, ConvergesNearExactFront) {
  const LinearBiProblem p = smallProblem(24, 19);
  const auto exact = exactParetoFront(p);
  const RunResult res = runNsga2(p, smallOptions(1));
  ASSERT_FALSE(res.archive.empty());
  for (const Individual& ind : res.archive.members())
    for (const Objectives& e : exact) ASSERT_FALSE(dominates(ind.obj, e));
  const double eps = additiveEpsilon(res.archive.front(), exact);
  EXPECT_LE(eps, 0.10 * static_cast<double>(p.damageTotal()));
}

TEST(Nsga2, DeterministicForSeed) {
  const LinearBiProblem p = smallProblem(20, 23);
  const auto a = runNsga2(p, smallOptions(5));
  const auto b = runNsga2(p, smallOptions(5));
  EXPECT_EQ(a.archive.front(), b.archive.front());
}

TEST(EvolutionaryBoth, BeatRandomSearchOnHypervolume) {
  const LinearBiProblem p = smallProblem(64, 29);
  const Objectives ref{p.costTotal() + 1, p.damageTotal() + 1};
  const EvolutionOptions opt = smallOptions(1);
  const double hvSpea = hypervolume2D(runSpea2(p, opt).archive.front(), ref);
  const double hvNsga = hypervolume2D(runNsga2(p, opt).archive.front(), ref);
  const double hvRand =
      hypervolume2D(randomSearch(p, 40 * 61, 1).archive.front(), ref);
  EXPECT_GT(hvSpea, hvRand);
  EXPECT_GT(hvNsga, hvRand);
}

TEST(Baselines, GreedyMinCostMatchesFrontKnee) {
  const LinearBiProblem p = smallProblem(40, 31);
  const std::uint64_t bound = p.damageTotal() / 10;
  const auto direct = greedyMinCost(p, bound);
  ASSERT_TRUE(direct.has_value());
  EXPECT_LE(direct->obj.damage, bound);
  const auto viaFront =
      greedyFront(p).archive.minCostWithDamageAtMost(bound);
  ASSERT_TRUE(viaFront.has_value());
  EXPECT_EQ(direct->obj.cost, viaFront->obj.cost);
  EXPECT_EQ(direct->obj.damage, viaFront->obj.damage);
}

TEST(Baselines, GreedyMinCostUnreachableBound) {
  LinearBiProblem p;
  p.cost = {1, 1};
  p.gain = {10, 0};  // index 1 contributes nothing
  // damage can go to 0 by hardening index 0 -> bound 0 reachable;
  EXPECT_TRUE(greedyMinCost(p, 0).has_value());
  // but a problem where some gain is locked behind gain==0 break:
  LinearBiProblem q;
  q.cost = {1};
  q.gain = {0};
  EXPECT_FALSE(greedyMinCost(q, 0).has_value() && q.damageTotal() > 0);
}

TEST(Baselines, GreedyFrontThinningKeepsEndpoints) {
  Rng rng(3);
  LinearBiProblem p;
  for (int i = 0; i < 3000; ++i) {
    p.cost.push_back(static_cast<std::uint64_t>(rng.range(1, 5)));
    p.gain.push_back(static_cast<std::uint64_t>(rng.range(1, 50)));
  }
  const RunResult res = greedyFront(p, 64);
  EXPECT_LE(res.archive.size(), 70u);  // thinned
  EXPECT_EQ(res.archive.members().front().obj.cost, 0u);
  EXPECT_EQ(res.archive.members().back().obj.damage, 0u);
}

TEST(Spea2, SeedGenomesEnterThePopulation) {
  const LinearBiProblem p = smallProblem(24, 37);
  // A seed that is already optimal for one bound: the greedy knee.
  const auto knee = greedyMinCost(p, p.damageTotal() / 10);
  ASSERT_TRUE(knee.has_value());
  EvolutionOptions opt = smallOptions(9);
  opt.generations = 1;  // no time to discover anything: must come from seed
  opt.seedGenomes.push_back(knee->genome);
  const RunResult res = runSpea2(p, opt);
  const auto found =
      res.archive.minCostWithDamageAtMost(p.damageTotal() / 10);
  ASSERT_TRUE(found.has_value());
  EXPECT_LE(found->obj.cost, knee->obj.cost);
}

TEST(Spea2, SeedGenomeLengthChecked) {
  const LinearBiProblem p = smallProblem(24, 37);
  EvolutionOptions opt = smallOptions(9);
  opt.seedGenomes.push_back(Genome(7));  // wrong length
  EXPECT_THROW(runSpea2(p, opt), Error);
}

TEST(InitialPopulation, ContainsBothAnchors) {
  const LinearBiProblem p = smallProblem(32, 41);
  EvolutionOptions opt = smallOptions(2);
  opt.generations = 0;
  const RunResult res = runSpea2(p, opt);
  // Archive of generation 0 contains the all-zero and all-one endpoints.
  bool zero = false, full = false;
  for (const Individual& ind : res.archive.members()) {
    zero |= ind.obj.cost == 0 && ind.obj.damage == p.damageTotal();
    full |= ind.obj.damage == 0;
  }
  EXPECT_TRUE(zero);
  EXPECT_TRUE(full);
}

// Property sweep over seeds: SPEA-2 stays consistent with the exact DP.
class Spea2VsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Spea2VsExact, NeverDominatesExactFront) {
  const LinearBiProblem p = smallProblem(18, GetParam());
  const auto exact = exactParetoFront(p);
  const RunResult res = runSpea2(p, smallOptions(GetParam()));
  for (const Individual& ind : res.archive.members())
    for (const Objectives& e : exact)
      ASSERT_FALSE(dominates(ind.obj, e)) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Spea2VsExact,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace rrsn::moo

#include <gtest/gtest.h>

#include "diag/diagnosis.hpp"
#include "rsn/example_networks.hpp"
#include "test_util.hpp"

namespace rrsn::diag {
namespace {

using fault::Fault;
using rsn::makeFig1Network;

TEST(Syndrome, DistanceAndEquality) {
  Syndrome a;
  a.passed = DynamicBitset(6);
  a.passed.set(0);
  a.passed.set(3);
  Syndrome b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.distanceTo(b), 0u);
  b.passed.set(5);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.distanceTo(b), 1u);
}

TEST(Dictionary, FaultFreePassesEverything) {
  const rsn::Network net = makeFig1Network();
  const Syndrome clean = FaultDictionary::measure(net, nullptr);
  EXPECT_EQ(clean.passed.count(), 2 * net.instruments().size());
}

TEST(Dictionary, DiagnoseFaultFree) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const Diagnosis d = dict.diagnose(dict.faultFreeSyndrome());
  EXPECT_TRUE(d.faultFree);
  EXPECT_TRUE(d.exactMatches.empty());
}

TEST(Dictionary, InjectedFaultIsAmongCandidates) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  for (std::size_t k = 0; k < dict.faults().size(); ++k) {
    const Fault& f = dict.faults()[k];
    const Syndrome observed = FaultDictionary::measure(net, &f);
    const Diagnosis d = dict.diagnose(observed);
    if (d.faultFree) continue;  // undetectable fault (e.g. harmless stuck)
    const bool found =
        std::find(d.exactMatches.begin(), d.exactMatches.end(), f) !=
        d.exactMatches.end();
    EXPECT_TRUE(found) << fault::describe(net, f);
  }
}

TEST(Dictionary, StuckM0IsDetectedAndLocated) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const Fault f = Fault::muxStuck(net.findMux("m0"), 1);
  const Diagnosis d = dict.diagnose(FaultDictionary::measure(net, &f));
  ASSERT_FALSE(d.faultFree);
  ASSERT_FALSE(d.exactMatches.empty());
  // Every candidate in the class kills all three instruments, like m0=1.
  EXPECT_TRUE(std::find(d.exactMatches.begin(), d.exactMatches.end(), f) !=
              d.exactMatches.end());
}

TEST(Dictionary, HarmlessFaultsAreUndetectable) {
  // stuck(sb1_mux=1) always includes the SIB content: all accesses pass.
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const Fault f = Fault::muxStuck(net.findMux("sb1_mux"), 1);
  const Diagnosis d = dict.diagnose(FaultDictionary::measure(net, &f));
  EXPECT_TRUE(d.faultFree);
}

TEST(Dictionary, ResolutionStatistics) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const auto r = dict.resolution();
  EXPECT_EQ(r.faults, dict.faults().size());
  EXPECT_GT(r.detectable, 0u);
  EXPECT_LE(r.detectable, r.faults);
  EXPECT_GT(r.classes, 1u);
  EXPECT_GE(r.avgAmbiguity, 1.0);
}

TEST(Dictionary, HardeningShrinksTheFaultUniverse) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  std::vector<bool> hardened(net.primitiveCount(), false);
  hardened[net.linearId({rsn::PrimitiveRef::Kind::Mux, net.findMux("m0")})] =
      true;
  const auto before = dict.resolution();
  const auto after = dict.resolutionExcluding(hardened);
  EXPECT_EQ(after.faults, before.faults - 2);  // two stuck faults removed
  EXPECT_LE(after.detectable, before.detectable);
}

TEST(Dictionary, UnknownSyndromeFallsBackToNearest) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  Syndrome weird;
  weird.passed = DynamicBitset(2 * net.instruments().size());
  weird.passed.set(0);  // a pattern no single fault produces
  const Diagnosis d = dict.diagnose(weird);
  EXPECT_FALSE(d.faultFree);
  EXPECT_TRUE(d.exactMatches.empty());
  EXPECT_FALSE(d.nearestMatches.empty());
  EXPECT_GT(d.nearestDistance, 0u);
}

TEST(Dictionary, ClassTableRenders) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const std::string table = dict.classTable(10).render();
  EXPECT_NE(table.find("class size"), std::string::npos);
  EXPECT_NE(table.find("stuck("), std::string::npos);
}

// Property: on random networks, every detectable injected fault is
// diagnosed to a candidate set containing itself.
class DiagnosisSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiagnosisSweep, CandidatesContainInjectedFault) {
  Rng rng(GetParam() * 7 + 3);
  test::RandomNetOptions opt;
  opt.targetSegments = 14;
  const rsn::Network net = test::randomNetwork(rng, opt);
  const FaultDictionary dict = FaultDictionary::build(net);
  for (std::size_t k = 0; k < dict.faults().size(); ++k) {
    const Fault& f = dict.faults()[k];
    const Diagnosis d = dict.diagnose(dict.syndromeOf(k));
    if (d.faultFree) continue;
    ASSERT_TRUE(std::find(d.exactMatches.begin(), d.exactMatches.end(), f) !=
                d.exactMatches.end())
        << "seed=" << GetParam() << " " << fault::describe(net, f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagnosisSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace rrsn::diag

#include <gtest/gtest.h>

#include <algorithm>

#include "diag/diagnosis.hpp"
#include "harden/fault_tolerant.hpp"
#include "rsn/example_networks.hpp"
#include "support/parallel.hpp"
#include "test_util.hpp"

namespace rrsn::diag {
namespace {

using fault::Fault;
using rsn::makeFig1Network;

TEST(Syndrome, DistanceAndEquality) {
  Syndrome a;
  a.passed = DynamicBitset(6);
  a.passed.set(0);
  a.passed.set(3);
  Syndrome b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.distanceTo(b), 0u);
  b.passed.set(5);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.distanceTo(b), 1u);
}

TEST(Dictionary, FaultFreePassesEverything) {
  const rsn::Network net = makeFig1Network();
  const Syndrome clean = FaultDictionary::measure(net, nullptr);
  EXPECT_EQ(clean.passed.count(), 2 * net.instruments().size());
}

TEST(Dictionary, DiagnoseFaultFree) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const Diagnosis d = dict.diagnose(dict.faultFreeSyndrome());
  EXPECT_TRUE(d.faultFree);
  EXPECT_TRUE(d.exactMatches.empty());
}

TEST(Dictionary, InjectedFaultIsAmongCandidates) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  for (std::size_t k = 0; k < dict.faults().size(); ++k) {
    const Fault& f = dict.faults()[k];
    const Syndrome observed = FaultDictionary::measure(net, &f);
    const Diagnosis d = dict.diagnose(observed);
    if (d.faultFree) continue;  // undetectable fault (e.g. harmless stuck)
    const bool found =
        std::find(d.exactMatches.begin(), d.exactMatches.end(), f) !=
        d.exactMatches.end();
    EXPECT_TRUE(found) << fault::describe(net, f);
  }
}

TEST(Dictionary, StuckM0IsDetectedAndLocated) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const Fault f = Fault::muxStuck(net.findMux("m0"), 1);
  const Diagnosis d = dict.diagnose(FaultDictionary::measure(net, &f));
  ASSERT_FALSE(d.faultFree);
  ASSERT_FALSE(d.exactMatches.empty());
  // Every candidate in the class kills all three instruments, like m0=1.
  EXPECT_TRUE(std::find(d.exactMatches.begin(), d.exactMatches.end(), f) !=
              d.exactMatches.end());
}

TEST(Dictionary, HarmlessFaultsAreUndetectable) {
  // stuck(sb1_mux=1) always includes the SIB content: all accesses pass.
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const Fault f = Fault::muxStuck(net.findMux("sb1_mux"), 1);
  const Diagnosis d = dict.diagnose(FaultDictionary::measure(net, &f));
  EXPECT_TRUE(d.faultFree);
}

TEST(Dictionary, ResolutionStatistics) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const auto r = dict.resolution();
  EXPECT_EQ(r.faults, dict.faults().size());
  EXPECT_GT(r.detectable, 0u);
  EXPECT_LE(r.detectable, r.faults);
  EXPECT_GT(r.classes, 1u);
  EXPECT_GE(r.avgAmbiguity, 1.0);
}

TEST(Dictionary, HardeningShrinksTheFaultUniverse) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  std::vector<bool> hardened(net.primitiveCount(), false);
  hardened[net.linearId({rsn::PrimitiveRef::Kind::Mux, net.findMux("m0")})] =
      true;
  const auto before = dict.resolution();
  const auto after = dict.resolutionExcluding(hardened);
  EXPECT_EQ(after.faults, before.faults - 2);  // two stuck faults removed
  EXPECT_LE(after.detectable, before.detectable);
}

TEST(Dictionary, UnknownSyndromeFallsBackToNearest) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  Syndrome weird;
  weird.passed = DynamicBitset(2 * net.instruments().size());
  weird.passed.set(0);  // a pattern no single fault produces
  const Diagnosis d = dict.diagnose(weird);
  EXPECT_FALSE(d.faultFree);
  EXPECT_TRUE(d.exactMatches.empty());
  EXPECT_FALSE(d.nearestMatches.empty());
  EXPECT_GT(d.nearestDistance, 0u);
}

TEST(Dictionary, ClassTableRenders) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const std::string table = dict.classTable(10).render();
  EXPECT_NE(table.find("class size"), std::string::npos);
  EXPECT_NE(table.find("stuck("), std::string::npos);
}

// Property: on random networks, every detectable injected fault is
// diagnosed to a candidate set containing itself.
class DiagnosisSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiagnosisSweep, CandidatesContainInjectedFault) {
  Rng rng(GetParam() * 7 + 3);
  test::RandomNetOptions opt;
  opt.targetSegments = 14;
  const rsn::Network net = test::randomNetwork(rng, opt);
  const FaultDictionary dict = FaultDictionary::build(net);
  for (std::size_t k = 0; k < dict.faults().size(); ++k) {
    const Fault& f = dict.faults()[k];
    const Diagnosis d = dict.diagnose(dict.syndromeOf(k));
    if (d.faultFree) continue;
    ASSERT_TRUE(std::find(d.exactMatches.begin(), d.exactMatches.end(), f) !=
                d.exactMatches.end())
        << "seed=" << GetParam() << " " << fault::describe(net, f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagnosisSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---- Batched-engine equivalence -------------------------------------
// The frontier-sweep engine must reproduce the per-probe reference
// byte-for-byte: same fault order, same fault-free syndrome, same row
// for every fault (the universe covers every SegmentBreak and every
// MuxStuck branch, so row equality exercises all fault kinds).

void expectDictionariesEqual(const rsn::Network& net,
                             const FaultDictionary& probe,
                             const FaultDictionary& batched) {
  ASSERT_EQ(probe.faults().size(), batched.faults().size());
  EXPECT_EQ(probe.faultFreeSyndrome(), batched.faultFreeSyndrome());
  for (std::size_t k = 0; k < probe.faults().size(); ++k) {
    ASSERT_TRUE(probe.faults()[k] == batched.faults()[k]);
    EXPECT_EQ(probe.syndromeOf(k), batched.syndromeOf(k))
        << fault::describe(net, probe.faults()[k]);
  }
}

void expectEnginesAgree(const rsn::Network& net) {
  expectDictionariesEqual(net, FaultDictionary::build(net, DictMode::Probe),
                          FaultDictionary::build(net, DictMode::Batched));
}

TEST(EngineEquivalence, ExampleNetworks) {
  expectEnginesAgree(makeFig1Network());
  expectEnginesAgree(rsn::makeTinyNetwork());
}

TEST(EngineEquivalence, VerifyModeAcceptsEveryRow) {
  // Verify runs both engines and raises on any differing row, so merely
  // completing the build proves zero row mismatches on this network.
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net, DictMode::Verify);
  EXPECT_EQ(dict.mode(), DictMode::Verify);
  EXPECT_FALSE(dict.faults().empty());
}

class EngineEquivalenceSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineEquivalenceSweep, RandomNetworks) {
  Rng rng(GetParam() * 31 + 5);
  test::RandomNetOptions opt;
  opt.targetSegments = 18;
  const rsn::Network net = test::randomNetwork(rng, opt);
  expectEnginesAgree(net);
}

TEST_P(EngineEquivalenceSweep, HardenedVariants) {
  // The fault-tolerant augmentation adds TAP-controlled skip muxes, so
  // its break rows exercise the tolerant access modes heavily (most
  // breaks become routable-around instead of fatal).
  Rng rng(GetParam() * 13 + 7);
  test::RandomNetOptions opt;
  opt.targetSegments = 12;
  const rsn::Network net = test::randomNetwork(rng, opt);
  expectEnginesAgree(harden::augmentFaultTolerant(net).network);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

TEST(EngineEquivalence, DeterministicAcrossThreadCounts) {
  Rng rng(424242);
  test::RandomNetOptions opt;
  opt.targetSegments = 30;
  const rsn::Network net = test::randomNetwork(rng, opt);
  const std::size_t restore = threadCount();
  const FaultDictionary ref = FaultDictionary::build(net, DictMode::Batched);
  for (const std::size_t threads : {1u, 2u, 4u}) {
    setThreadCount(threads);
    expectDictionariesEqual(net, ref,
                            FaultDictionary::build(net, DictMode::Batched));
  }
  setThreadCount(restore);
}

TEST(EngineEquivalence, DiagnosisAndResolutionModeInvariant) {
  // Downstream consumers (diagnose lookups, resolution statistics) must
  // not be able to tell which engine built the dictionary.
  Rng rng(99);
  test::RandomNetOptions opt;
  opt.targetSegments = 16;
  const rsn::Network net = test::randomNetwork(rng, opt);
  const FaultDictionary probe = FaultDictionary::build(net, DictMode::Probe);
  const FaultDictionary batched =
      FaultDictionary::build(net, DictMode::Batched);
  const auto rp = probe.resolution();
  const auto rb = batched.resolution();
  EXPECT_EQ(rp.faults, rb.faults);
  EXPECT_EQ(rp.detectable, rb.detectable);
  EXPECT_EQ(rp.classes, rb.classes);
  EXPECT_EQ(rp.avgAmbiguity, rb.avgAmbiguity);
  for (std::size_t k = 0; k < probe.faults().size(); ++k) {
    const Diagnosis dp = probe.diagnose(probe.syndromeOf(k));
    const Diagnosis db = batched.diagnose(batched.syndromeOf(k));
    EXPECT_EQ(dp.faultFree, db.faultFree);
    ASSERT_EQ(dp.exactMatches.size(), db.exactMatches.size());
    for (std::size_t i = 0; i < dp.exactMatches.size(); ++i)
      EXPECT_TRUE(dp.exactMatches[i] == db.exactMatches[i]);
  }
}

// -------------------------------------------------- pair diagnosis

TEST(PairDiagnosis, ComposeSyndromesIsTheRowUnionBound) {
  Syndrome a, b;
  a.passed = DynamicBitset(6);
  b.passed = DynamicBitset(6);
  a.passed.set(0);
  a.passed.set(2);
  a.passed.set(4);
  b.passed.set(2);
  b.passed.set(5);
  const Syndrome c = composeSyndromes(a, b);
  // passed = AND: an access passes under the pair only if it passes
  // under both faults individually.
  EXPECT_EQ(c.passed.count(), 1u);
  EXPECT_TRUE(c.passed.test(2));
}

TEST(PairDiagnosis, MeasureMultiGeneralizesMeasure) {
  const rsn::Network net = makeFig1Network();
  EXPECT_EQ(FaultDictionary::measureMulti(net, {}),
            FaultDictionary::measure(net, nullptr));
  const Fault f = Fault::segmentBreak(net.findSegment("c2"));
  EXPECT_EQ(FaultDictionary::measureMulti(net, {f}),
            FaultDictionary::measure(net, &f));
}

TEST(PairDiagnosis, CompositionConsistentPairsAreAmongCandidates) {
  // For every pair whose simulated syndrome equals its row-union
  // composition (no interaction effects), diagnosing that syndrome must
  // list the pair among the exact candidates.
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const auto& faults = dict.faults();
  std::size_t checked = 0;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    for (std::size_t j = i + 1; j < faults.size(); ++j) {
      const Fault& a = faults[i];
      const Fault& b = faults[j];
      if (a.kind == fault::FaultKind::MuxStuck &&
          b.kind == fault::FaultKind::MuxStuck && a.prim == b.prim) {
        continue;  // contradictory hardware, excluded from the pair space
      }
      const Syndrome composed =
          composeSyndromes(dict.syndromeOf(i), dict.syndromeOf(j));
      const Syndrome observed = FaultDictionary::measureMulti(net, {a, b});
      if (!(observed == composed)) continue;  // interaction effect
      const FaultDictionary::PairDiagnosis d = dict.diagnosePair(observed);
      if (d.faultFree) {
        // Composition indistinguishable from fault-free: both rows pass
        // everything, so the pair is (correctly) undetectable.
        EXPECT_EQ(observed, dict.faultFreeSyndrome());
        continue;
      }
      EXPECT_EQ(d.exactPairs.empty(), false);
      if (d.exactPairCount <= FaultDictionary::PairDiagnosis::kMaxListedPairs) {
        const bool found = std::any_of(
            d.exactPairs.begin(), d.exactPairs.end(), [&](const auto& p) {
              return (p.first == a && p.second == b) ||
                     (p.first == b && p.second == a);
            });
        EXPECT_TRUE(found)
            << fault::describe(net, a) << " + " << fault::describe(net, b);
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(PairDiagnosis, FaultFreeSyndromeShortCircuits) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net);
  const FaultDictionary::PairDiagnosis d =
      dict.diagnosePair(dict.faultFreeSyndrome());
  EXPECT_TRUE(d.faultFree);
  EXPECT_TRUE(d.exactPairs.empty());
  EXPECT_EQ(d.exactPairCount, 0u);
}

TEST(PairDiagnosis, VerifyModeCrossChecksCandidatesOnTheSimulator) {
  const rsn::Network net = makeFig1Network();
  const FaultDictionary dict = FaultDictionary::build(net, DictMode::Verify);
  // Two breaks on distinct instrument segments compose without
  // interaction: their pair must come back simulation-verified.
  const Fault a = Fault::segmentBreak(net.findSegment("seg_i2"));
  const Fault b = Fault::segmentBreak(net.findSegment("seg_i3"));
  const Syndrome observed = FaultDictionary::measureMulti(net, {a, b});
  const FaultDictionary::PairDiagnosis d = dict.diagnosePair(observed);
  ASSERT_FALSE(d.faultFree);
  ASSERT_FALSE(d.exactPairs.empty());
  EXPECT_TRUE(d.verifiedBySimulation);
  // The non-verify build path never claims simulation backing.
  const FaultDictionary batched =
      FaultDictionary::build(net, DictMode::Batched);
  EXPECT_FALSE(batched.diagnosePair(observed).verifiedBySimulation);
}

}  // namespace
}  // namespace rrsn::diag

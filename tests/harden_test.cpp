#include <gtest/gtest.h>

#include <sstream>

#include "harden/fault_tolerant.hpp"
#include "harden/hardening.hpp"
#include "moo/spea2.hpp"
#include "rsn/example_networks.hpp"
#include "rsn/graph_view.hpp"
#include "sim/retarget.hpp"
#include "test_util.hpp"

namespace rrsn::harden {
namespace {

using rsn::makeFig1Network;
using rsn::makeFig1Spec;

HardeningProblem fig1Problem(const rsn::Network& net) {
  const auto analysis = crit::CriticalityAnalyzer(net, makeFig1Spec(net)).run();
  return HardeningProblem::assemble(net, analysis);
}

TEST(CostModel, DefaultsScaleWithLength) {
  const rsn::Network net = makeFig1Network();
  const CostModel model;
  // seg_i3 has 5 cells: 1 + ceil(5/8) = 2 units.
  EXPECT_EQ(model.costOf(net, {rsn::PrimitiveRef::Kind::Segment,
                               net.findSegment("seg_i3")}),
            2u);
  // every mux costs 5.
  EXPECT_EQ(model.costOf(net, {rsn::PrimitiveRef::Kind::Mux,
                               net.findMux("m0")}),
            5u);
  EXPECT_EQ(model.costs(net).size(), net.primitiveCount());
}

TEST(Problem, AssembleMatchesAnalysis) {
  const rsn::Network net = makeFig1Network();
  const HardeningProblem p = fig1Problem(net);
  EXPECT_EQ(p.linear.size(), net.primitiveCount());
  EXPECT_EQ(p.maxDamage, 93u);  // Fig. 1 golden total
  EXPECT_EQ(p.maxCost, p.linear.costTotal());
  EXPECT_GT(p.maxCost, 0u);
}

TEST(Plan, EvaluateMatchesLinearObjectives) {
  const rsn::Network net = makeFig1Network();
  const auto analysis = crit::CriticalityAnalyzer(net, makeFig1Spec(net)).run();
  const HardeningProblem p = HardeningProblem::assemble(net, analysis);

  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    const moo::Genome g =
        moo::Genome::random(net.primitiveCount(), rng.uniform(), rng);
    const moo::Objectives viaProblem = evaluate(p.linear, g, p.maxDamage);
    const HardeningPlan plan(net, g);
    const moo::Objectives viaPlan = plan.evaluate(analysis);
    ASSERT_EQ(viaPlan.cost, viaProblem.cost);
    ASSERT_EQ(viaPlan.damage, viaProblem.damage);
  }
}

TEST(Plan, HardenedPrimitiveQueries) {
  const rsn::Network net = makeFig1Network();
  const std::size_t m0 = net.linearId(
      {rsn::PrimitiveRef::Kind::Mux, net.findMux("m0")});
  moo::Genome g(net.primitiveCount());
  g.flip(static_cast<std::uint32_t>(m0));
  const HardeningPlan plan(net, g);
  EXPECT_EQ(plan.hardenedCount(), 1u);
  EXPECT_TRUE(plan.isHardenedLinear(m0));
  const auto prims = plan.hardenedPrimitives();
  ASSERT_EQ(prims.size(), 1u);
  EXPECT_EQ(net.primitiveName(prims[0]), "m0");
}

TEST(Plan, ResidualDamageAndReport) {
  const rsn::Network net = makeFig1Network();
  const auto analysis = crit::CriticalityAnalyzer(net, makeFig1Spec(net)).run();
  moo::Genome g(net.primitiveCount());
  g.flip(static_cast<std::uint32_t>(
      net.linearId({rsn::PrimitiveRef::Kind::Mux, net.findMux("m0")})));
  const HardeningPlan plan(net, g);
  const auto residual = plan.residualDamage(analysis);
  std::uint64_t sum = 0;
  for (const auto& [ref, d] : residual) sum += d;
  EXPECT_EQ(sum, 93u - 18u);
  const std::string report = plan.report(analysis).render();
  EXPECT_NE(report.find("m0"), std::string::npos);
}

TEST(Solutions, ExtractPaperSolutions) {
  const rsn::Network net = makeFig1Network();
  const HardeningProblem p = fig1Problem(net);
  moo::EvolutionOptions opt;
  opt.populationSize = 40;
  opt.generations = 80;
  opt.seed = 1;
  const moo::RunResult res = moo::runSpea2(p.linear, opt);
  const PaperSolutions sols = extractPaperSolutions(res.archive, p);
  ASSERT_TRUE(sols.minCost.has_value());
  ASSERT_TRUE(sols.minDamage.has_value());
  EXPECT_LE(sols.minCost->obj.damage,
            static_cast<std::uint64_t>(0.10 * static_cast<double>(p.maxDamage)));
  EXPECT_LE(sols.minDamage->obj.cost,
            static_cast<std::uint64_t>(0.10 * static_cast<double>(p.maxCost)));
}

TEST(Plan, SerializationRoundTrip) {
  const rsn::Network net = makeFig1Network();
  moo::Genome g(net.primitiveCount());
  g.flip(static_cast<std::uint32_t>(
      net.linearId({rsn::PrimitiveRef::Kind::Mux, net.findMux("m0")})));
  g.flip(static_cast<std::uint32_t>(net.linearId(
      {rsn::PrimitiveRef::Kind::Segment, net.findSegment("sb1")})));
  const HardeningPlan plan(net, g);

  std::stringstream ss;
  writePlan(ss, plan);
  const HardeningPlan back = readPlan(ss, net);
  EXPECT_EQ(back.hardenedCount(), 2u);
  EXPECT_TRUE(back.isHardened({rsn::PrimitiveRef::Kind::Mux,
                               net.findMux("m0")}));
  EXPECT_TRUE(back.isHardened({rsn::PrimitiveRef::Kind::Segment,
                               net.findSegment("sb1")}));
}

TEST(Plan, ReadRejectsUnknownPrimitive) {
  const rsn::Network net = makeFig1Network();
  std::istringstream is("no_such_primitive\n");
  EXPECT_THROW(readPlan(is, net), ParseError);
}

TEST(Plan, ReadSkipsCommentsAndBlanks) {
  const rsn::Network net = makeFig1Network();
  std::istringstream is("# comment\n\n  m0  \n");
  const HardeningPlan plan = readPlan(is, net);
  EXPECT_EQ(plan.hardenedCount(), 1u);
}

TEST(Safety, CriticalExposuresDetectsUnprotectedCritical) {
  const rsn::Network net = makeFig1Network();
  rsn::CriticalitySpec spec = makeFig1Spec(net);
  spec.of(net.findInstrument("i1")).criticalObs = true;

  // Nothing hardened: i1 is exposed through several faults (its own
  // segment, the SIB, m0, ...).
  const HardeningPlan nothing(net, moo::Genome(net.primitiveCount()));
  EXPECT_FALSE(criticalExposures(net, spec, nothing).empty());

  // Hardening every primitive on i1's access path removes all exposures.
  moo::Genome g(net.primitiveCount());
  const auto hardenSeg = [&](const char* name) {
    g.flip(static_cast<std::uint32_t>(net.linearId(
        {rsn::PrimitiveRef::Kind::Segment, net.findSegment(name)})));
  };
  const auto hardenMux = [&](const char* name) {
    g.flip(static_cast<std::uint32_t>(
        net.linearId({rsn::PrimitiveRef::Kind::Mux, net.findMux(name)})));
  };
  hardenSeg("seg_i1");
  hardenSeg("sb1");
  hardenSeg("c2");
  hardenSeg("c1");
  hardenMux("sb1_mux");
  hardenMux("m0");
  hardenMux("m1");
  hardenMux("m2");
  const HardeningPlan protective(net, g);
  const auto exposures = criticalExposures(net, spec, protective);
  EXPECT_TRUE(exposures.empty())
      << "first exposure: "
      << (exposures.empty() ? "" : fault::describe(net, exposures.front()));
}

TEST(Safety, MinDamageSolutionProtectsCriticalInstruments) {
  // End-to-end on a random network with the paper's 70/70/10/10 spec:
  // drive the damage below the smallest critical weight and verify that
  // no critical instrument can be lost anymore.
  Rng rng(77);
  test::RandomNetOptions netOpt;
  netOpt.targetSegments = 40;
  const rsn::Network net = test::randomNetwork(rng, netOpt);
  const auto spec = test::randomSpecFor(net, rng);
  const auto analysis = crit::CriticalityAnalyzer(net, spec).run();
  const HardeningProblem p = HardeningProblem::assemble(net, analysis);

  // Choose a plan greedily until the residual damage is below every
  // critical weight (possible: harden everything => zero damage).
  const auto ranking = analysis.ranking();
  std::uint64_t minCritical = ~0ULL;
  for (rsn::InstrumentId i = 0; i < net.instruments().size(); ++i) {
    const auto& w = spec.of(i);
    if (w.criticalObs) minCritical = std::min(minCritical, w.obs);
    if (w.criticalSet) minCritical = std::min(minCritical, w.set);
  }
  ASSERT_NE(minCritical, ~0ULL);

  moo::Genome g(net.primitiveCount());
  std::uint64_t residual = analysis.totalDamage();
  for (std::size_t id : ranking) {
    if (residual < minCritical) break;
    g.flip(static_cast<std::uint32_t>(id));
    residual -= analysis.damageOf(id);
  }
  const HardeningPlan plan(net, g);
  EXPECT_TRUE(criticalExposures(net, spec, plan).empty());
}

TEST(FaultTolerant, AugmentationPreservesInstruments) {
  const rsn::Network net = makeFig1Network();
  const FaultTolerantRsn ft = augmentFaultTolerant(net);
  EXPECT_EQ(ft.network.instruments().size(), net.instruments().size());
  EXPECT_EQ(ft.network.segments().size(), net.segments().size());
  EXPECT_EQ(ft.network.muxes().size(), net.muxes().size() + ft.addedMuxes);
  EXPECT_GT(ft.addedMuxes, 0u);
  EXPECT_EQ(ft.addedCost, ft.addedMuxes * CostModel{}.muxCost);
}

TEST(FaultTolerant, ToleratesEverySegmentBreak) {
  // After augmentation, any single segment break leaves every *other*
  // instrument observable and settable (route around the defect).
  const rsn::Network net = makeFig1Network();
  const FaultTolerantRsn ft = augmentFaultTolerant(net);
  const rsn::GraphView gv = rsn::buildGraphView(ft.network);
  for (rsn::SegmentId s = 0; s < ft.network.segments().size(); ++s) {
    const auto loss = fault::lossUnderFaultGraph(
        ft.network, gv, fault::Fault::segmentBreak(s));
    const rsn::InstrumentId own = ft.network.segment(s).instrument;
    loss.unobservable.forEachSet([&](std::size_t i) {
      EXPECT_EQ(static_cast<rsn::InstrumentId>(i), own)
          << "break(" << ft.network.segment(s).name << ") lost instrument "
          << ft.network.instrument(static_cast<rsn::InstrumentId>(i)).name;
    });
    loss.unsettable.forEachSet([&](std::size_t i) {
      EXPECT_EQ(static_cast<rsn::InstrumentId>(i), own);
    });
  }
}

TEST(FaultTolerant, ToleratesSegmentBreaksOnRandomNetworks) {
  Rng rng(99);
  for (int round = 0; round < 6; ++round) {
    const rsn::Network net = test::randomNetwork(rng);
    const FaultTolerantRsn ft = augmentFaultTolerant(net);
    const rsn::GraphView gv = rsn::buildGraphView(ft.network);
    for (rsn::SegmentId s = 0; s < ft.network.segments().size(); ++s) {
      const auto loss = fault::lossUnderFaultGraph(
          ft.network, gv, fault::Fault::segmentBreak(s));
      const rsn::InstrumentId own = ft.network.segment(s).instrument;
      const std::size_t expected = own == rsn::kNone ? 0u : 1u;
      ASSERT_LE(loss.unobservable.count(), expected);
      ASSERT_LE(loss.unsettable.count(), expected);
    }
  }
}

TEST(FaultTolerant, CostsScaleWithSegmentCount) {
  // The augmentation needs roughly one skip mux per primitive; selective
  // hardening's knee is far cheaper on the same network (the paper's
  // "needs less hardware overhead").
  const rsn::Network net = makeFig1Network();
  const FaultTolerantRsn ft = augmentFaultTolerant(net);
  EXPECT_GE(ft.addedMuxes, net.segments().size());
  const HardeningProblem p = fig1Problem(net);
  const auto knee = moo::greedyMinCost(
      p.linear,
      static_cast<std::uint64_t>(0.10 * static_cast<double>(p.maxDamage)));
  ASSERT_TRUE(knee.has_value());
  EXPECT_LT(knee->obj.cost, ft.addedCost);
}

TEST(FaultTolerant, ChangesTopologyUnlikeHardening) {
  // The augmented network has different primitive counts — existing
  // access patterns cannot apply (Sec. II motivates why hardening
  // deliberately avoids this).
  const rsn::Network net = makeFig1Network();
  const FaultTolerantRsn ft = augmentFaultTolerant(net);
  EXPECT_NE(ft.network.muxes().size(), net.muxes().size());
  sim::ScanSimulator original(net);
  sim::Retargeter rt(original);
  const auto access = rt.readInstrument(net.findInstrument("i2"));
  ASSERT_TRUE(access.success);
  sim::ScanSimulator augmented(ft.network);
  EXPECT_FALSE(sim::replayPatterns(augmented, access));
}

}  // namespace
}  // namespace rrsn::harden

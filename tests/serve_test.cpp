// rrsn_serve daemon: wire protocol framing, the content-addressed
// artifact cache (LRU eviction, fingerprint-collision verification),
// endpoint dispatch over a real socketpair transport, thread-count
// determinism of cached responses, deadline-expired campaigns as typed
// errors, the FlatStore mmap-adopt tier — plus regression tests for the
// I/O-robustness bugfix sweep this PR ships (strict numeric CLI
// parsing, checkpoint save failures surfaced as Status, SIGPIPE
// immunity of the tools).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "benchgen/registry.hpp"
#include "campaign/checkpoint.hpp"
#include "rsn/example_networks.hpp"
#include "rsn/flat.hpp"
#include "rsn/netlist_io.hpp"
#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"

namespace rrsn::serve {
namespace {

namespace fs = std::filesystem;

std::string fig1Text() {
  return rsn::netlistToString(rsn::makeFig1Network());
}

// ------------------------------------------------------------ protocol

TEST(Protocol, FrameRoundTripOverPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string messages[] = {"", "x", R"({"id":1,"method":"ping"})",
                                  std::string(100000, 'z')};
  // The 100 kB frame exceeds the pipe buffer, so a writer thread pumps
  // while this thread reads (also proves writeAll handles short writes).
  std::thread writer([&] {
    for (const std::string& m : messages) {
      EXPECT_TRUE(writeFrame(fds[1], m).ok());
    }
  });
  for (const std::string& m : messages) {
    std::string payload = "sentinel";
    bool eof = true;
    const Status st = readFrame(fds[0], payload, eof);
    ASSERT_TRUE(st.ok()) << st.toString();
    EXPECT_FALSE(eof);
    EXPECT_EQ(payload, m);
  }
  writer.join();
  ::close(fds[1]);
  std::string payload;
  bool eof = false;
  const Status st = readFrame(fds[0], payload, eof);
  EXPECT_TRUE(st.ok()) << st.toString();
  EXPECT_TRUE(eof) << "clean close between frames must report eof, not error";
  ::close(fds[0]);
}

TEST(Protocol, TruncatedFrameIsDataLoss) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Announce 100 bytes, deliver 3, close.
  const std::uint8_t prefix[4] = {100, 0, 0, 0};
  ASSERT_TRUE(io::writeAll(fds[1], prefix, 4).ok());
  ASSERT_TRUE(io::writeAll(fds[1], "abc", 3).ok());
  ::close(fds[1]);
  std::string payload;
  bool eof = false;
  const Status st = readFrame(fds[0], payload, eof);
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.toString();
  ::close(fds[0]);
}

TEST(Protocol, OversizedFrameRejectedBeforeAllocation) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint32_t huge = kMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  std::memcpy(prefix, &huge, 4);
  ASSERT_TRUE(io::writeAll(fds[1], prefix, 4).ok());
  std::string payload;
  bool eof = false;
  const Status st = readFrame(fds[0], payload, eof);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.toString();
  ::close(fds[0]);
  ::close(fds[1]);
}

// ------------------------------------------------------- ArtifactCache

TEST(ArtifactCache, HitMissAndLruEviction) {
  ArtifactCache cache(100);
  auto blob = [](char c) { return std::make_shared<std::string>(10, c); };
  cache.put(1, "k", blob('a'), 40);
  cache.put(2, "k", blob('b'), 40);
  EXPECT_NE(cache.get(1, "k"), nullptr);  // 1 is now hotter than 2
  cache.put(3, "k", blob('c'), 40);       // evicts the cold entry: 2
  EXPECT_EQ(cache.get(2, "k"), nullptr);
  EXPECT_NE(cache.get(1, "k"), nullptr);
  EXPECT_NE(cache.get(3, "k"), nullptr);

  const ArtifactCache::Stats s = cache.stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.bytes, 80u);
  EXPECT_EQ(s.misses, 1u);  // only the get of the evicted key
  EXPECT_EQ(s.hits, 3u);
}

TEST(ArtifactCache, OverBudgetEntryIsKeptAloneInCache) {
  ArtifactCache cache(50);
  cache.put(1, "k", std::make_shared<int>(1), 10);
  cache.put(2, "k", std::make_shared<int>(2), 500);  // alone over budget
  EXPECT_EQ(cache.get(1, "k"), nullptr) << "cold entry must be evicted";
  EXPECT_NE(cache.get(2, "k"), nullptr)
      << "the fresh entry itself is never evicted by its own insert";
}

TEST(ArtifactCache, VerifierRejectionCountsCollisionAndEvicts) {
  ArtifactCache cache(0);
  cache.put(7, "net", std::make_shared<std::string>("contentA"), 8);
  const auto reject = [](const std::shared_ptr<const void>& v) {
    return *static_cast<const std::string*>(v.get()) == "contentB";
  };
  EXPECT_EQ(cache.get(7, "net", reject), nullptr);
  const ArtifactCache::Stats s = cache.stats();
  EXPECT_EQ(s.collisions, 1u);
  EXPECT_EQ(s.entries, 0u) << "the impostor entry must be erased";
  // The slot is free for the verified content now.
  cache.put(7, "net", std::make_shared<std::string>("contentB"), 8);
  EXPECT_NE(cache.get(7, "net", reject), nullptr);
}

TEST(ArtifactCache, GetOrComputeCoalescesConcurrentMisses) {
  ArtifactCache cache(0);
  std::atomic<int> invocations{0};
  std::atomic<int> inFlight{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const void>> values(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      values[static_cast<std::size_t>(t)] = cache.getOrCompute(
          42, "slow", [&]() {
            invocations.fetch_add(1);
            inFlight.fetch_add(1);
            // Park long enough that the other threads all arrive while
            // this compute is still in flight.
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
            inFlight.fetch_sub(1);
            return std::pair<std::shared_ptr<const void>, std::size_t>{
                std::make_shared<std::string>("artifact"), 8};
          });
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(invocations.load(), 1)
      << "identical in-flight misses must coalesce onto one compute";
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(values[static_cast<std::size_t>(t)], values[0])
        << "every waiter must receive the winner's value";
  }
  const ArtifactCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.coalesced, kThreads - 1u);
}

TEST(ArtifactCache, GetOrComputeExceptionReachesEveryWaiter) {
  ArtifactCache cache(0);
  std::atomic<int> invocations{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      try {
        (void)cache.getOrCompute(7, "boom", [&]() {
          invocations.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
          throw Error("compute failed");
          return std::pair<std::shared_ptr<const void>, std::size_t>{};
        });
      } catch (const Error&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GE(invocations.load(), 1);
  EXPECT_EQ(failures.load(), 4)
      << "a compute failure must propagate to every coalesced waiter";
  EXPECT_EQ(cache.get(7, "boom"), nullptr) << "failures are never cached";
}

TEST(ArtifactCache, GetOrComputeServesCachedEntryWithoutComputing) {
  ArtifactCache cache(0);
  cache.put(9, "k", std::make_shared<std::string>("cached"), 8);
  bool computed = false;
  const auto value = cache.getOrCompute(9, "k", [&]() {
    computed = true;
    return std::pair<std::shared_ptr<const void>, std::size_t>{
        std::make_shared<std::string>("fresh"), 8};
  });
  EXPECT_FALSE(computed);
  EXPECT_EQ(*std::static_pointer_cast<const std::string>(value), "cached");
}

TEST(ArtifactCache, GetOrComputeVerifierRejectionRecomputes) {
  ArtifactCache cache(0);
  cache.put(5, "net", std::make_shared<std::string>("impostor"), 8);
  const auto wantFresh = [](const std::shared_ptr<const void>& v) {
    return *static_cast<const std::string*>(v.get()) == "fresh";
  };
  const auto value = cache.getOrCompute(
      5, "net",
      [] {
        return std::pair<std::shared_ptr<const void>, std::size_t>{
            std::make_shared<std::string>("fresh"), 8};
      },
      wantFresh);
  EXPECT_EQ(*std::static_pointer_cast<const std::string>(value), "fresh");
  EXPECT_EQ(cache.stats().collisions, 1u);
  // The verified content replaced the impostor.
  EXPECT_NE(cache.get(5, "net", wantFresh), nullptr);
}

TEST(ArtifactCache, SharedPtrSurvivesEviction) {
  ArtifactCache cache(10);
  cache.put(1, "k", std::make_shared<std::string>("alive"), 8);
  auto held = cache.getAs<std::string>(1, "k");
  ASSERT_NE(held, nullptr);
  cache.put(2, "k", std::make_shared<std::string>("pusher"), 8);  // evicts 1
  EXPECT_EQ(cache.get(1, "k"), nullptr);
  EXPECT_EQ(*held, "alive") << "readers keep evicted values alive";
}

// ------------------------------------------------- server over stream

/// One in-process client: socketpair + a thread pumping serveStream.
class StreamClient {
 public:
  explicit StreamClient(Server& server) {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    fd_ = sv[0];
    pump_ = std::thread([&server, fd = sv[1]] {
      (void)server.serveStream(fd, fd);
      ::close(fd);
    });
  }
  ~StreamClient() {
    ::close(fd_);
    pump_.join();
  }

  json::Value call(const std::string& method, json::Object params = {},
                   std::uint64_t id = 1) {
    json::Object req;
    req["id"] = json::Value(id);
    req["method"] = json::Value(method);
    req["params"] = json::Value(std::move(params));
    const Status ws = writeFrame(fd_, json::serialize(json::Value(std::move(req))));
    EXPECT_TRUE(ws.ok()) << ws.toString();
    std::string payload;
    bool eof = false;
    const Status rs = readFrame(fd_, payload, eof);
    EXPECT_TRUE(rs.ok() && !eof) << rs.toString();
    return json::parse(payload);
  }

  int fd() const { return fd_; }

 private:
  int fd_;
  std::thread pump_;
};

json::Object netlistParams(const std::string& text) {
  json::Object p;
  p["netlist"] = json::Value(text);
  return p;
}

TEST(Server, PingAndUnknownMethod) {
  Server server;
  StreamClient client(server);
  const json::Value pong = client.call("ping");
  EXPECT_TRUE(pong.at("ok").asBool());
  EXPECT_TRUE(pong.at("result").at("pong").asBool());

  const json::Value unknown = client.call("frobnicate");
  EXPECT_FALSE(unknown.at("ok").asBool());
  EXPECT_EQ(unknown.at("error").at("code").asString(), "UNIMPLEMENTED");
}

TEST(Server, MalformedFrameGetsErrorResponseAndStreamSurvives) {
  Server server;
  StreamClient client(server);
  ASSERT_TRUE(writeFrame(client.fd(), "this is not json").ok());
  std::string payload;
  bool eof = false;
  ASSERT_TRUE(readFrame(client.fd(), payload, eof).ok());
  const json::Value resp = json::parse(payload);
  EXPECT_FALSE(resp.at("ok").asBool());
  EXPECT_EQ(resp.at("error").at("code").asString(), "INVALID_ARGUMENT");
  // The framing stayed in sync: the next request works.
  EXPECT_TRUE(client.call("ping").at("ok").asBool());
}

TEST(Server, AnalyzeIsCachedAndByteIdentical) {
  Server server;
  StreamClient client(server);
  const std::string text = fig1Text();
  const json::Value first = client.call("analyze", netlistParams(text), 1);
  ASSERT_TRUE(first.at("ok").asBool()) << json::serialize(first);
  const json::Value second = client.call("analyze", netlistParams(text), 2);
  ASSERT_TRUE(second.at("ok").asBool());
  // The envelope differs (echoed ids); the result payload must not.
  EXPECT_EQ(json::serialize(first.at("result")),
            json::serialize(second.at("result")));

  StreamClient other(server);  // cache is per-server, not per-connection
  const json::Value third = other.call("analyze", netlistParams(text), 3);
  EXPECT_EQ(json::serialize(first.at("result")),
            json::serialize(third.at("result")));

  const json::Value stats = client.call("stats");
  EXPECT_GE(stats.at("result").at("cache").at("hits").asUnsigned(), 2u);
}

TEST(Server, NumericParamsShareTheCliValidator) {
  Server server;
  StreamClient client(server);
  json::Object params = netlistParams(fig1Text());
  params["top"] = json::Value("0x10");  // strings take the strict CLI path
  const json::Value resp = client.call("analyze", std::move(params));
  ASSERT_FALSE(resp.at("ok").asBool());
  EXPECT_EQ(resp.at("error").at("code").asString(), "INVALID_ARGUMENT");
  EXPECT_NE(resp.at("error").at("message").asString().find(
                "not an unsigned integer"),
            std::string::npos);

  json::Object negative = netlistParams(fig1Text());
  negative["top"] = json::Value(std::int64_t{-3});
  const json::Value resp2 = client.call("analyze", std::move(negative));
  ASSERT_FALSE(resp2.at("ok").asBool());
  EXPECT_EQ(resp2.at("error").at("code").asString(), "INVALID_ARGUMENT");

  json::Object good = netlistParams(fig1Text());
  good["top"] = json::Value("3");  // valid decimal string is accepted
  EXPECT_TRUE(client.call("analyze", std::move(good)).at("ok").asBool());
}

TEST(Server, BadNetlistIsInvalidArgumentNotInternal) {
  Server server;
  StreamClient client(server);
  const json::Value resp =
      client.call("analyze", netlistParams("segment s1 length=banana"));
  ASSERT_FALSE(resp.at("ok").asBool());
  EXPECT_EQ(resp.at("error").at("code").asString(), "INVALID_ARGUMENT");
}

TEST(Server, CampaignDeadlineExpiresAsTypedError) {
  Server server;
  StreamClient client(server);
  // Exhaustive pair campaign on a large SoC design with a 1 ms budget:
  // the deadline fires mid-run and must surface as DEADLINE_EXCEEDED,
  // not as a truncated success.
  json::Object params = netlistParams(
      rsn::netlistToString(benchgen::buildBenchmark("q12710")));
  params["mode"] = json::Value("pairs");
  params["sample"] = json::Value(std::uint64_t{0});
  params["deadline_ms"] = json::Value(std::uint64_t{1});
  const json::Value resp = client.call("campaign", std::move(params));
  ASSERT_FALSE(resp.at("ok").asBool()) << json::serialize(resp);
  EXPECT_EQ(resp.at("error").at("code").asString(), "DEADLINE_EXCEEDED");
}

TEST(Server, WhatifValidatesBeforeStubbing) {
  Server server;
  StreamClient client(server);

  // Missing params are INVALID_ARGUMENT, not a stub acknowledgement.
  const json::Value noNetlist = client.call("whatif", json::Object{});
  ASSERT_FALSE(noNetlist.at("ok").asBool());
  EXPECT_EQ(noNetlist.at("error").at("code").asString(), "INVALID_ARGUMENT");

  json::Object noChange = netlistParams(fig1Text());
  const json::Value resp2 = client.call("whatif", std::move(noChange));
  ASSERT_FALSE(resp2.at("ok").asBool());
  EXPECT_EQ(resp2.at("error").at("code").asString(), "INVALID_ARGUMENT");

  json::Object badNetlist = netlistParams("segment s1 length=banana");
  badNetlist["change"] = json::Value("break:s1");
  const json::Value resp3 = client.call("whatif", std::move(badNetlist));
  ASSERT_FALSE(resp3.at("ok").asBool());
  EXPECT_EQ(resp3.at("error").at("code").asString(), "INVALID_ARGUMENT");

  json::Object badChange = netlistParams(fig1Text());
  badChange["change"] = json::Value("explode:everything");
  const json::Value resp4 = client.call("whatif", std::move(badChange));
  ASSERT_FALSE(resp4.at("ok").asBool());
  EXPECT_EQ(resp4.at("error").at("code").asString(), "INVALID_ARGUMENT");

  json::Object unknownSeg = netlistParams(fig1Text());
  unknownSeg["change"] = json::Value("break:no_such_segment");
  const json::Value resp5 = client.call("whatif", std::move(unknownSeg));
  ASSERT_FALSE(resp5.at("ok").asBool());
  EXPECT_EQ(resp5.at("error").at("code").asString(), "INVALID_ARGUMENT");

  // A well-formed request still gets the honest stub.
  json::Object good = netlistParams(fig1Text());
  good["change"] = json::Value("break:c0");
  const json::Value ok = client.call("whatif", std::move(good));
  ASSERT_TRUE(ok.at("ok").asBool()) << json::serialize(ok);
  EXPECT_TRUE(ok.at("result").at("stub").asBool());
  EXPECT_EQ(ok.at("result").at("change").asString(), "break:c0");
}

TEST(Server, CertifyEndpointIsCachedAndByteIdentical) {
  Server server;
  StreamClient client(server);
  const std::string text = fig1Text();
  const json::Value first = client.call("certify", netlistParams(text), 1);
  ASSERT_TRUE(first.at("ok").asBool()) << json::serialize(first);
  const json::Value& summary = first.at("result").at("summary");
  EXPECT_GT(summary.at("faults").asUnsigned(), 0u);
  EXPECT_EQ(summary.at("unknown_read").asUnsigned(), 0u);
  EXPECT_EQ(summary.at("unknown_write").asUnsigned(), 0u);

  const std::uint64_t missesAfterFirst =
      client.call("stats").at("result").at("cache").at("misses").asUnsigned();
  const json::Value second = client.call("certify", netlistParams(text), 2);
  ASSERT_TRUE(second.at("ok").asBool());
  EXPECT_EQ(json::serialize(first.at("result")),
            json::serialize(second.at("result")));
  // The repeat was served from the artifact cache: no new certify miss.
  EXPECT_EQ(
      client.call("stats").at("result").at("cache").at("misses").asUnsigned(),
      missesAfterFirst);

  // Malformed netlist text stays a typed argument error.
  const json::Value bad =
      client.call("certify", netlistParams("segment s1 length=banana"));
  ASSERT_FALSE(bad.at("ok").asBool());
  EXPECT_EQ(bad.at("error").at("code").asString(), "INVALID_ARGUMENT");
}

TEST(Server, ConcurrentClientsThreadCountInvariance) {
  const std::string text = fig1Text();
  std::vector<std::string> perThreadCount;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    setThreadCount(threads);
    Server server;
    // 4 concurrent clients hammer the same design; every response
    // result for a given request must be identical across clients,
    // connections and RRSN_THREADS.
    std::vector<std::string> results(4);
    {
      std::vector<std::unique_ptr<StreamClient>> clients;
      for (std::size_t c = 0; c < 4; ++c)
        clients.push_back(std::make_unique<StreamClient>(server));
      std::vector<std::thread> drivers;
      for (std::size_t c = 0; c < 4; ++c) {
        drivers.emplace_back([&, c] {
          std::string acc;
          acc += json::serialize(
              clients[c]->call("analyze", netlistParams(text)).at("result"));
          acc += json::serialize(
              clients[c]->call("diagnose", netlistParams(text)).at("result"));
          json::Object h = netlistParams(text);
          h["generations"] = json::Value(std::uint64_t{4});
          h["population"] = json::Value(std::uint64_t{8});
          acc += json::serialize(
              clients[c]->call("harden", std::move(h)).at("result"));
          results[c] = std::move(acc);
        });
      }
      for (auto& d : drivers) d.join();
    }
    for (std::size_t c = 1; c < 4; ++c) EXPECT_EQ(results[0], results[c]);
    perThreadCount.push_back(results[0]);
  }
  setThreadCount(1);
  ASSERT_EQ(perThreadCount.size(), 3u);
  EXPECT_EQ(perThreadCount[0], perThreadCount[1])
      << "responses must be byte-identical at RRSN_THREADS=1 vs 2";
  EXPECT_EQ(perThreadCount[0], perThreadCount[2])
      << "responses must be byte-identical at RRSN_THREADS=1 vs 4";
}

// -------------------------------------------------- FlatStore (mmap)

TEST(FlatStore, PublishesThenMapsAcrossServerInstances) {
  const fs::path dir =
      fs::temp_directory_path() / "rrsn_serve_flatstore_test";
  fs::remove_all(dir);
  const std::string text = fig1Text();

  ServerOptions opts;
  opts.cacheDir = dir.string();
  std::string firstFingerprint, secondFingerprint;
  {
    Server server(opts);
    StreamClient client(server);
    const json::Value resp = client.call("analyze", netlistParams(text));
    ASSERT_TRUE(resp.at("ok").asBool());
    firstFingerprint =
        json::serialize(resp.at("result").at("flat_fingerprint"));
    const json::Value stats = client.call("stats");
    EXPECT_EQ(
        stats.at("result").at("flat_store").at("published").asUnsigned(), 1u);
  }
  ASSERT_FALSE(fs::is_empty(dir)) << "arena file must be on disk";
  {
    // A fresh daemon process (modelled by a fresh Server) adopts the
    // published arena zero-copy instead of re-lowering.
    Server server(opts);
    StreamClient client(server);
    const json::Value resp = client.call("analyze", netlistParams(text));
    ASSERT_TRUE(resp.at("ok").asBool());
    secondFingerprint =
        json::serialize(resp.at("result").at("flat_fingerprint"));
    const json::Value stats = client.call("stats");
    EXPECT_GE(stats.at("result").at("flat_store").at("map_hits").asUnsigned(),
              1u);
    EXPECT_EQ(stats.at("result").at("flat_store").at("lowers").asUnsigned(),
              0u);
  }
  EXPECT_EQ(firstFingerprint, secondFingerprint)
      << "mmap-adopted arena must be byte-identical to in-process lowering";
  fs::remove_all(dir);
}

TEST(FlatStore, CorruptArenaFileIsRejectedAndRepublished) {
  const fs::path dir =
      fs::temp_directory_path() / "rrsn_serve_flatstore_corrupt";
  fs::remove_all(dir);
  const std::string text = fig1Text();
  ServerOptions opts;
  opts.cacheDir = dir.string();
  {
    Server server(opts);
    StreamClient client(server);
    ASSERT_TRUE(client.call("analyze", netlistParams(text)).at("ok").asBool());
  }
  // Flip bytes in the published arena.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const int fd = ::open(entry.path().c_str(), O_WRONLY);
    ASSERT_GE(fd, 0);
    const char garbage[8] = {'X', 'X', 'X', 'X', 'X', 'X', 'X', 'X'};
    ASSERT_EQ(::pwrite(fd, garbage, sizeof garbage, 64), 8);
    ::close(fd);
  }
  {
    Server server(opts);
    StreamClient client(server);
    const json::Value resp = client.call("analyze", netlistParams(text));
    ASSERT_TRUE(resp.at("ok").asBool())
        << "corrupt disk tier must degrade to re-lowering, not fail";
    const json::Value stats = client.call("stats");
    EXPECT_EQ(stats.at("result").at("flat_store").at("map_hits").asUnsigned(),
              0u);
    EXPECT_GE(stats.at("result").at("flat_store").at("lowers").asUnsigned(),
              1u);
  }
  fs::remove_all(dir);
}

// ----------------------------------------------- daemon binary (stdio)

TEST(DaemonBinary, StdioProtocolRoundTripAndCleanShutdown) {
  int toChild[2], fromChild[2];
  ASSERT_EQ(::pipe(toChild), 0);
  ASSERT_EQ(::pipe(fromChild), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(toChild[0], STDIN_FILENO);
    ::dup2(fromChild[1], STDOUT_FILENO);
    ::close(toChild[0]);
    ::close(toChild[1]);
    ::close(fromChild[0]);
    ::close(fromChild[1]);
    ::execl(RRSN_SERVE_BIN, RRSN_SERVE_BIN, "--stdio",
            static_cast<char*>(nullptr));
    _exit(98);
  }
  ::close(toChild[0]);
  ::close(fromChild[1]);

  auto call = [&](const std::string& method) {
    json::Object req;
    req["id"] = json::Value(std::uint64_t{1});
    req["method"] = json::Value(method);
    const Status ws =
        writeFrame(toChild[1], json::serialize(json::Value(std::move(req))));
    EXPECT_TRUE(ws.ok()) << ws.toString();
    std::string payload;
    bool eof = false;
    const Status rs = readFrame(fromChild[0], payload, eof);
    EXPECT_TRUE(rs.ok() && !eof) << rs.toString();
    return json::parse(payload);
  };
  EXPECT_TRUE(call("ping").at("result").at("pong").asBool());
  EXPECT_TRUE(call("shutdown").at("result").at("stopping").asBool());
  ::close(toChild[1]);
  ::close(fromChild[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "shutdown must exit the daemon cleanly";
}

TEST(DaemonBinary, MalformedCliOptionExitsOneWithUsage) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    ::dup2(devnull, STDOUT_FILENO);
    ::dup2(devnull, STDERR_FILENO);
    ::execl(RRSN_SERVE_BIN, RRSN_SERVE_BIN, "--stdio", "--cache-bytes",
            "banana", static_cast<char*>(nullptr));
    _exit(98);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1)
      << "the daemon shares the strict numeric validator with rrsn_tool";
}

// --------------------------------------- bugfix regressions: CLI args

int runTool(const std::vector<std::string>& args, bool closeStdout = false) {
  std::vector<const char*> argv;
  argv.push_back(RRSN_TOOL_BIN);
  for (const std::string& a : args) argv.push_back(a.c_str());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (closeStdout) {
      // Simulate `rrsn_tool ... | head`: stdout is a pipe whose read
      // end is already gone, so the first flush hits EPIPE.
      int fds[2];
      if (::pipe(fds) != 0) _exit(97);
      ::close(fds[0]);
      ::dup2(fds[1], STDOUT_FILENO);
    } else {
      ::dup2(devnull, STDOUT_FILENO);
    }
    ::dup2(devnull, STDERR_FILENO);
    ::execv(RRSN_TOOL_BIN, const_cast<char**>(argv.data()));
    _exit(98);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status))
      << "tool must exit, not die on a signal (status " << status << ")";
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ToolRegression, MalformedNumericOptionExitsOneNotGarbage) {
  // Pre-fix, "--seed banana" was silently parsed as 0 by atoll-style
  // parsing; now every numeric option rejects with a usage error.
  EXPECT_EQ(runTool({"analyze", "example:fig1", "--seed", "banana"}), 1);
  EXPECT_EQ(runTool({"analyze", "example:fig1", "--top", "12abc"}), 1);
  EXPECT_EQ(runTool({"campaign", "example:fig1", "--sample", "1e6"}), 1);
  EXPECT_EQ(runTool({"campaign", "example:fig1", "--deadline-ms",
                     "99999999999999999999999999"}),
            1);
  EXPECT_EQ(runTool({"harden", "example:fig1", "--population", "-5"}), 1);
  // Sanity: a valid invocation still succeeds.
  EXPECT_EQ(runTool({"info", "example:fig1"}), 0);
}

TEST(ToolRegression, SigpipeDoesNotKillTheTool) {
  // Dot output into a pipe whose read end is closed: pre-fix the
  // process died on SIGPIPE (exit status 141); now the EPIPE write
  // error is reported on stderr and the tool exits 1.
  EXPECT_EQ(runTool({"dot", "example:fig1"}, /*closeStdout=*/true), 1);
}

// ------------------------------------ bugfix regression: checkpoints

TEST(CheckpointRegression, SaveFailureIsTypedStatusNotSilentSuccess) {
  campaign::CampaignResult result;
  // Parent directory does not exist: the staged tmp file cannot even be
  // created.  Pre-fix this returned void with the stream error ignored.
  const Status st = campaign::saveCheckpoint(
      "/nonexistent-dir-for-rrsn-test/checkpoint.json", 42, result);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.toString();

  // And the success path still round-trips.
  const fs::path ok =
      fs::temp_directory_path() / "rrsn_serve_checkpoint_ok.json";
  fs::remove(ok);
  const Status good = campaign::saveCheckpoint(ok.string(), 42, result);
  EXPECT_TRUE(good.ok()) << good.toString();
  EXPECT_TRUE(fs::exists(ok));
  EXPECT_FALSE(fs::exists(ok.string() + ".tmp"))
      << "staged tmp file must not linger after a successful rename";
  fs::remove(ok);
}

}  // namespace
}  // namespace rrsn::serve

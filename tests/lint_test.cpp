// Tests for the rrsn_lint static verification subsystem: rule registry
// integrity, one firing test per expressible rule (the acceptance gate
// requires >= 12 distinct rule ids across this corpus), source-line
// attribution, report formats (text / JSON / SARIF 2.1.0), byte-level
// determinism, and the fail-fast wiring into the criticality and
// campaign entry points.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "benchgen/registry.hpp"
#include "campaign/campaign.hpp"
#include "crit/analyzer.hpp"
#include "lint/lint.hpp"
#include "rsn/builder.hpp"
#include "rsn/spec.hpp"
#include "support/json.hpp"
#include "test_util.hpp"

namespace rrsn {
namespace {

std::set<std::string> ruleIds(const lint::LintResult& r) {
  std::set<std::string> ids;
  for (const auto& f : r.findings) ids.insert(f.ruleId);
  return ids;
}

bool hasRule(const lint::LintResult& r, const std::string& id) {
  return ruleIds(r).count(id) != 0;
}

const lint::Finding* findingOf(const lint::LintResult& r,
                               const std::string& id) {
  for (const auto& f : r.findings)
    if (f.ruleId == id) return &f;
  return nullptr;
}

/// A network whose control wiring deadlocks from reset: each mux's
/// control register sits in the *non-reset* branch of the other, so
/// neither register can ever be reached to open the other's branch.
/// Only the NetworkBuilder can express this (the parser resolves control
/// references at declaration time and rejects self-containment).
rsn::Network deadlockNetwork() {
  rsn::NetworkBuilder b("deadlock");
  const auto ca = b.segment("ca", 1);
  const auto cb = b.segment("cb", 1);
  const auto muxA = b.mux("A", {b.wire(), cb}, "ca");
  const auto muxB = b.mux("B", {b.wire(), ca}, "cb");
  b.setTop(b.chain({muxA, muxB}));
  return b.build();
}

// ------------------------------------------------------------ registry

TEST(LintRegistry, SortedUniqueAndResolvable) {
  const auto& reg = lint::ruleRegistry();
  ASSERT_GE(reg.size(), 20u);
  for (std::size_t i = 1; i < reg.size(); ++i)
    EXPECT_LT(std::string(reg[i - 1].id), std::string(reg[i].id))
        << "registry must be sorted by id";
  for (const auto& rule : reg) {
    const auto* found = lint::findRule(rule.id);
    ASSERT_NE(found, nullptr) << rule.id;
    EXPECT_EQ(found->id, std::string(rule.id));
    EXPECT_NE(std::string(rule.summary), "");
  }
  EXPECT_EQ(lint::findRule("no.such-rule"), nullptr);
  EXPECT_EQ(lint::findRule(""), nullptr);
}

// ------------------------------------------------- rule firing corpus

struct NetlistCase {
  const char* label;
  const char* rule;
  lint::Severity severity;
  std::string text;
};

std::vector<NetlistCase> netlistCorpus() {
  std::vector<NetlistCase> cases = {
      {"truncated input", "parse.syntax", lint::Severity::Error,
       "network n { segment"},
      {"duplicate segment name", "struct.duplicate-id", lint::Severity::Error,
       "network n { chain { segment a; segment a; } }"},
      {"unknown control reference", "sem.ctrl-unknown", lint::Severity::Error,
       "network n { chain { segment c;\n"
       "  mux m ctrl=ghost { branch { segment a; } branch { wire; } } } }"},
      {"wire-only mux", "struct.wire-only-mux", lint::Severity::Error,
       "network n { chain { segment a;\n"
       "  mux m { branch { wire; } branch { wire; } } } }"},
      {"1-bit control on a 3-way mux", "struct.ctrl-width",
       lint::Severity::Error,
       "network n { chain { segment c;\n"
       "  mux m ctrl=c { branch { segment a; } branch { segment b; }\n"
       "                 branch { segment d; } } } }"},
      {"unaddressable branch segment", "struct.unreachable",
       lint::Severity::Error,
       "network n { chain { segment c;\n"
       "  mux m ctrl=c { branch { segment a; } branch { segment b; }\n"
       "                 branch { segment d; } } } }"},
      {"SIB gating no instruments", "struct.dead-sib", lint::Severity::Warning,
       "network n { chain { segment t instrument=i0;\n"
       "  sib s { segment x; } } }"},
      {"two bypass branches", "struct.duplicate-branch",
       lint::Severity::Warning,
       "network n { chain {\n"
       "  mux m { branch { segment a; } branch { wire; } branch { wire; } }\n"
       "  segment t instrument=i0; } }"},
      {"case-confusable names", "struct.confusable-names",
       lint::Severity::Note,
       "network n { chain { segment Foo; segment foo; } }"},
      {"TAP-steered mux", "sem.unconstrained-mux", lint::Severity::Note,
       "network n { chain {\n"
       "  mux m { branch { segment a; } branch { wire; } } } }"},
      {"wire in series composition", "sem.orphan-wire", lint::Severity::Note,
       "network n { chain { wire; segment a; } }"},
      {"control register driving two muxes", "sem.shared-ctrl",
       lint::Severity::Note,
       "network n { chain { segment c;\n"
       "  mux m1 ctrl=c { branch { segment a; } branch { wire; } }\n"
       "  mux m2 ctrl=c { branch { segment b; } branch { wire; } } } }"},
  };
  // Deep SIB tower: 70 nesting levels blow past the depth guard while
  // staying well inside the parser's nesting cap (256).
  std::string deep = "network deep { chain { ";
  const int kLevels = 70;
  for (int i = 0; i < kLevels; ++i)
    deep += "sib s" + std::to_string(i) + " { ";
  deep += "segment x instrument=ix; ";
  for (int i = 0; i < kLevels + 1; ++i) deep += "} ";
  deep += "}";
  cases.push_back({"deep SIB tower", "ready.depth", lint::Severity::Warning,
                   std::move(deep)});
  return cases;
}

TEST(LintRules, CorpusFiresAtLeastTwelveDistinctRules) {
  std::set<std::string> firedIds;
  for (const auto& c : netlistCorpus()) {
    const auto linted = lint::lintNetlistText(c.text);
    EXPECT_TRUE(hasRule(linted.result, c.rule))
        << c.label << ": expected " << c.rule << ", got "
        << lint::textReport(linted.result, "<case>");
    const auto* f = findingOf(linted.result, c.rule);
    if (f != nullptr) {
      EXPECT_EQ(f->severity, c.severity) << c.label;
      EXPECT_NE(f->message, "") << c.label;
    }
    if (c.severity == lint::Severity::Error) {
      EXPECT_FALSE(linted.result.clean()) << c.label;
    }
    for (const auto& id : ruleIds(linted.result)) firedIds.insert(id);
  }

  // Builder-only and side-input rules join the tally below.
  {
    const auto result = lint::runLint(deadlockNetwork());
    EXPECT_TRUE(hasRule(result, "struct.ctrl-cycle"));
    for (const auto& id : ruleIds(result)) firedIds.insert(id);
  }
  EXPECT_GE(firedIds.size(), 12u)
      << "acceptance gate: >= 12 distinct rule ids across the corpus";
}

TEST(LintRules, CtrlCycleReportsTheDeadlockedMuxes) {
  const auto result = lint::runLint(deadlockNetwork());
  const auto* cycle = findingOf(result, "struct.ctrl-cycle");
  ASSERT_NE(cycle, nullptr) << lint::textReport(result, "<builder>");
  EXPECT_EQ(cycle->severity, lint::Severity::Error);
  EXPECT_NE(cycle->message.find("A"), std::string::npos);
  EXPECT_NE(cycle->message.find("B"), std::string::npos);
  // Both control registers hide behind the deadlock, so neither can
  // ever appear on the active scan path.
  EXPECT_TRUE(hasRule(result, "struct.unreachable"));
  EXPECT_FALSE(result.clean());
}

TEST(LintRules, CtrlDownstreamOfItsMux) {
  rsn::NetworkBuilder b("downstream");
  const auto c = b.segment("c", 1);
  const auto m = b.mux("m", {b.segment("a", 2, "ia"), b.wire()}, "c");
  b.setTop(b.chain({m, c}));  // control register serially after its mux
  const auto result = lint::runLint(b.build());
  const auto* f = findingOf(result, "sem.ctrl-downstream");
  ASSERT_NE(f, nullptr) << lint::textReport(result, "<builder>");
  EXPECT_EQ(f->severity, lint::Severity::Warning);
  EXPECT_EQ(f->subject, "m");  // anchored on the mux; names the register
  EXPECT_NE(f->message.find("'c'"), std::string::npos);
}

TEST(LintRules, SpecRulesFireOnDegenerateWeights) {
  std::istringstream netlist(
      "network n { chain { segment a instrument=ia;\n"
      "  segment b instrument=ib; segment c instrument=ic; } }");
  const auto linted = lint::lintNetlist(netlist);
  ASSERT_TRUE(linted.net.has_value());
  const auto& net = *linted.net;

  rsn::CriticalitySpec spec(net.instruments().size());
  // ia: flagged critical for observation but dominated by the uncritical
  // mass (2 + 9 = 11 > 10).  ib/ic carry the uncritical weights; ic has
  // no weight at all on the settability side.
  spec.of(0) = {10, 1, true, false};
  spec.of(1) = {2, 0, false, false};
  spec.of(2) = {9, 0, false, false};
  lint::LintOptions opts;
  opts.spec = &spec;
  const auto result = lint::runLint(net, opts);
  EXPECT_TRUE(hasRule(result, "spec.dominance"))
      << lint::textReport(result, "<spec>");
  EXPECT_TRUE(result.clean());  // spec smells are warnings, not errors

  rsn::CriticalitySpec zero(net.instruments().size());
  lint::LintOptions zopts;
  zopts.spec = &zero;
  EXPECT_TRUE(hasRule(lint::runLint(net, zopts), "spec.zero-weight"));

  // Size mismatch is an outright error.
  rsn::CriticalitySpec wrongSize(1);
  lint::LintOptions wopts;
  wopts.spec = &wrongSize;
  const auto bad = lint::runLint(net, wopts);
  EXPECT_TRUE(hasRule(bad, "spec.invalid"));
  EXPECT_FALSE(bad.clean());
}

TEST(LintRules, PlanNamesResolveAgainstThePrimitiveTable) {
  std::istringstream netlist(
      "network n { chain { segment c;\n"
      "  mux m ctrl=c { branch { segment a instrument=ia; }\n"
      "                 branch { wire; } } } }");
  const auto linted = lint::lintNetlist(netlist);
  ASSERT_TRUE(linted.net.has_value());

  const std::vector<std::string> good = {"c", "m", "a"};
  lint::LintOptions gopts;
  gopts.hardenedNames = &good;
  EXPECT_FALSE(hasRule(lint::runLint(*linted.net, gopts),
                       "plan.unknown-primitive"));

  const std::vector<std::string> bad = {"c", "no_such_register"};
  lint::LintOptions bopts;
  bopts.hardenedNames = &bad;
  const auto result = lint::runLint(*linted.net, bopts);
  const auto* f = findingOf(result, "plan.unknown-primitive");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->subject, "no_such_register");
  EXPECT_FALSE(result.clean());

  std::istringstream plan("# hardened set\n  c  \n\nno_such_register\n");
  EXPECT_EQ(lint::readPlanNames(plan),
            (std::vector<std::string>{"c", "no_such_register"}));
}

// ------------------------------------------------ source-line anchors

TEST(LintSources, FindingsCarryDeclarationLines) {
  const std::string text =
      "network n {\n"
      "  chain {\n"
      "    segment a;\n"
      "    segment a;\n"
      "  }\n"
      "}\n";
  const auto linted = lint::lintNetlistText(text);
  EXPECT_FALSE(linted.net.has_value());
  const auto* dup = findingOf(linted.result, "struct.duplicate-id");
  ASSERT_NE(dup, nullptr);
  EXPECT_EQ(dup->subject, "a");
  EXPECT_EQ(dup->line, 3u) << "anchor is the first declaration";

  const std::string widthText =
      "network n {\n"
      "  chain {\n"
      "    segment c;\n"
      "    mux m ctrl=c {\n"
      "      branch { segment a; }\n"
      "      branch { segment b; }\n"
      "      branch { segment d; }\n"
      "    }\n"
      "  }\n"
      "}\n";
  const auto width = lint::lintNetlistText(widthText);
  ASSERT_TRUE(width.net.has_value());
  const auto* w = findingOf(width.result, "struct.ctrl-width");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->line, 4u);
  const auto* u = findingOf(width.result, "struct.unreachable");
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->subject, "d");
  EXPECT_EQ(u->line, 7u);
}

// ------------------------------------------------------------ reports

TEST(LintReports, TextReportListsFindingsAndTally) {
  const auto linted = lint::lintNetlistText(
      "network n { chain { segment c;\n"
      "  mux m ctrl=c { branch { segment a; } branch { segment b; }\n"
      "                 branch { segment d; } } } }");
  const std::string text = lint::textReport(linted.result, "demo.rsn");
  EXPECT_NE(text.find("demo.rsn:"), std::string::npos);
  EXPECT_NE(text.find("[struct.ctrl-width]"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("fix:"), std::string::npos);
  EXPECT_NE(text.find("error(s)"), std::string::npos);
}

TEST(LintReports, JsonReportRoundTripsCounts) {
  const auto linted = lint::lintNetlistText(
      "network n { chain { segment c;\n"
      "  mux m ctrl=c { branch { segment a; } branch { segment b; }\n"
      "                 branch { segment d; } } } }");
  const json::Value doc = lint::jsonReport(linted.result, "demo.rsn");
  EXPECT_EQ(doc.at("artifact").asString(), "demo.rsn");
  EXPECT_EQ(static_cast<std::size_t>(doc.at("errors").asInt()),
            linted.result.errors);
  EXPECT_EQ(doc.at("findings").asArray().size(),
            linted.result.findings.size());
  // The document parses back to itself (canonical serialization).
  EXPECT_EQ(json::parse(json::serialize(doc)), doc);
}

TEST(LintReports, SarifDocumentHasTheRequiredShape) {
  const auto linted = lint::lintNetlistText(
      "network n { chain { segment c;\n"
      "  mux m ctrl=c { branch { segment a; } branch { segment b; }\n"
      "                 branch { segment d; } } } }");
  ASSERT_FALSE(linted.result.findings.empty());
  const json::Value doc = lint::sarifReport(linted.result, "demo.rsn");

  EXPECT_NE(doc.at("$schema").asString().find("sarif-2.1.0"),
            std::string::npos);
  EXPECT_EQ(doc.at("version").asString(), "2.1.0");
  const auto& runs = doc.at("runs").asArray();
  ASSERT_EQ(runs.size(), 1u);
  const auto& driver = runs[0].at("tool").at("driver");
  EXPECT_EQ(driver.at("name").asString(), "rrsn_lint");
  const auto& rules = driver.at("rules").asArray();
  EXPECT_EQ(rules.size(), lint::ruleRegistry().size());

  const auto& results = runs[0].at("results").asArray();
  ASSERT_EQ(results.size(), linted.result.findings.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& res = results[i];
    const auto& finding = linted.result.findings[i];
    EXPECT_EQ(res.at("ruleId").asString(), finding.ruleId);
    // ruleIndex must point at the matching registry entry.
    const auto idx = static_cast<std::size_t>(res.at("ruleIndex").asInt());
    ASSERT_LT(idx, rules.size());
    EXPECT_EQ(rules[idx].at("id").asString(), finding.ruleId);
    const std::string level = res.at("level").asString();
    EXPECT_TRUE(level == "error" || level == "warning" || level == "note")
        << level;
    const auto& loc = res.at("locations").asArray();
    ASSERT_EQ(loc.size(), 1u);
    const auto& phys = loc[0].at("physicalLocation");
    EXPECT_EQ(phys.at("artifactLocation").at("uri").asString(), "demo.rsn");
    if (finding.line != 0) {
      EXPECT_EQ(static_cast<std::size_t>(
                    phys.at("region").at("startLine").asInt()),
                finding.line);
    }
  }
}

// ------------------------------------------------------- determinism

TEST(LintDeterminism, ReportsAreByteIdenticalAcrossRuns) {
  // A findings-rich input: errors, warnings and notes all present.
  const std::string text =
      "network n { chain { segment c; wire;\n"
      "  mux m ctrl=c { branch { segment a; } branch { segment b; }\n"
      "                 branch { segment d; } }\n"
      "  mux m2 { branch { segment E; } branch { wire; } branch { wire; } }\n"
      "  segment e instrument=ie;\n"
      "  sib s { segment x; } } }";
  const auto first = lint::lintNetlistText(text);
  const auto second = lint::lintNetlistText(text);
  EXPECT_EQ(first.result.findings, second.result.findings);
  EXPECT_EQ(json::serialize(lint::jsonReport(first.result, "a.rsn"), 1),
            json::serialize(lint::jsonReport(second.result, "a.rsn"), 1));
  EXPECT_EQ(json::serialize(lint::sarifReport(first.result, "a.rsn"), 1),
            json::serialize(lint::sarifReport(second.result, "a.rsn"), 1));
  // Findings arrive sorted by (line, ruleId, subject, message).
  for (std::size_t i = 1; i < first.result.findings.size(); ++i) {
    const auto& p = first.result.findings[i - 1];
    const auto& q = first.result.findings[i];
    EXPECT_LE(std::tie(p.line, p.ruleId, p.subject, p.message),
              std::tie(q.line, q.ruleId, q.subject, q.message));
  }
}

// --------------------------------------------------------- fail-fast

TEST(LintFailFast, CriticalityAnalyzerRejectsDeadlockedNetworks) {
  const rsn::Network net = deadlockNetwork();
  const rsn::CriticalitySpec spec(net.instruments().size());
  EXPECT_THROW(crit::CriticalityAnalyzer(net, spec), lint::LintError);
  try {
    crit::CriticalityAnalyzer analyzer(net, spec);
    FAIL() << "expected lint::LintError";
  } catch (const lint::LintError& e) {
    EXPECT_NE(std::string(e.what()).find("struct.ctrl-cycle"),
              std::string::npos);
    EXPECT_GE(e.result().errors, 1u);
  }
  crit::AnalysisOptions off;
  off.lint = false;
  EXPECT_NO_THROW(crit::CriticalityAnalyzer(net, spec, off));
}

TEST(LintFailFast, CampaignEngineRejectsDeadlockedNetworks) {
  const rsn::Network net = deadlockNetwork();
  campaign::CampaignEngine engine(net);
  EXPECT_THROW(engine.run(), lint::LintError);

  campaign::CampaignConfig off;
  off.lint = false;
  campaign::CampaignEngine permissive(net, off);
  EXPECT_NO_THROW(permissive.run());
}

TEST(LintFailFast, RejectionIsFast) {
  const rsn::Network net = deadlockNetwork();
  // Warm up allocators/caches, then take the best of a few runs so a
  // scheduler hiccup cannot fail the gate spuriously.
  auto once = [&] {
    const auto start = std::chrono::steady_clock::now();
    EXPECT_THROW(lint::enforceClean(net, "test"), lint::LintError);
    return std::chrono::steady_clock::now() - start;
  };
  auto best = once();
  for (int i = 0; i < 4; ++i) best = std::min(best, once());
  EXPECT_LT(std::chrono::duration_cast<std::chrono::microseconds>(best),
            std::chrono::milliseconds(10))
      << "fail-fast must reject in < 10 ms";
}

// ------------------------------------------------- clean-model corpus

TEST(LintClean, ExampleNetlistsLintWithoutErrors) {
  namespace fs = std::filesystem;
  std::vector<fs::path> netlists;
  for (const auto& entry : fs::directory_iterator(RRSN_EXAMPLES_DIR))
    if (entry.path().extension() == ".rsn") netlists.push_back(entry.path());
  std::sort(netlists.begin(), netlists.end());
  ASSERT_GE(netlists.size(), 4u) << "examples/*.rsn corpus missing";
  for (const auto& path : netlists) {
    std::ifstream is(path);
    ASSERT_TRUE(is.good()) << path;
    const auto linted = lint::lintNetlist(is);
    EXPECT_TRUE(linted.net.has_value()) << path;
    EXPECT_EQ(linted.result.errors, 0u)
        << path << "\n" << lint::textReport(linted.result, path.string());
  }
}

TEST(LintClean, GeneratedBenchmarksLintWithoutErrors) {
  for (const char* name : {"TreeFlat", "TreeUnbalanced", "q12710"}) {
    const rsn::Network net = benchgen::buildBenchmark(name);
    const auto result = lint::runLint(net);
    EXPECT_EQ(result.errors, 0u)
        << name << "\n" << lint::textReport(result, name);
  }
}

}  // namespace
}  // namespace rrsn

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/bitset.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace rrsn {
namespace {

// ----------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, BinomialSmallNMatchesMean) {
  Rng rng(5);
  double total = 0;
  for (int i = 0; i < 2000; ++i) total += static_cast<double>(rng.binomial(20, 0.3));
  EXPECT_NEAR(total / 2000.0, 6.0, 0.5);
}

TEST(Rng, BinomialLargeNMatchesMean) {
  Rng rng(5);
  double total = 0;
  for (int i = 0; i < 500; ++i)
    total += static_cast<double>(rng.binomial(100000, 0.01));
  EXPECT_NEAR(total / 500.0, 1000.0, 30.0);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(6);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(10, 0.0), 0u);
  EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(Rng, SampleIndicesDistinctSortedInRange) {
  Rng rng(13);
  const auto sample = rng.sampleIndices(100, 20);
  ASSERT_EQ(sample.size(), 20u);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) == sample.end());
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Rng, SampleIndicesFullSet) {
  Rng rng(13);
  const auto sample = rng.sampleIndices(5, 5);
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng(13);
  EXPECT_THROW(rng.sampleIndices(3, 4), Error);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(99);
  Rng childA = parent.fork();
  Rng childB = parent.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += childA.next() == childB.next();
  EXPECT_LT(equal, 4);
}

// ---------------------------------------------------------- DynamicBitset

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset bs(130);
  EXPECT_EQ(bs.size(), 130u);
  EXPECT_FALSE(bs.test(0));
  bs.set(0);
  bs.set(64);
  bs.set(129);
  EXPECT_TRUE(bs.test(0));
  EXPECT_TRUE(bs.test(64));
  EXPECT_TRUE(bs.test(129));
  EXPECT_EQ(bs.count(), 3u);
  bs.reset(64);
  EXPECT_FALSE(bs.test(64));
  EXPECT_EQ(bs.count(), 2u);
}

TEST(DynamicBitset, OutOfRangeThrows) {
  DynamicBitset bs(10);
  EXPECT_THROW(bs.test(10), Error);
  EXPECT_THROW(bs.set(10), Error);
}

TEST(DynamicBitset, SetAllRespectsTail) {
  DynamicBitset bs(70);
  bs.setAll();
  EXPECT_EQ(bs.count(), 70u);
}

TEST(DynamicBitset, CountBelow) {
  DynamicBitset bs(200);
  for (std::size_t i = 0; i < 200; i += 3) bs.set(i);
  std::size_t expected = 0;
  for (std::size_t limit = 0; limit <= 200; limit += 7) {
    expected = 0;
    for (std::size_t i = 0; i < limit; ++i) expected += bs.test(i);
    EXPECT_EQ(bs.countBelow(limit), expected) << "limit=" << limit;
  }
}

TEST(DynamicBitset, FindNext) {
  DynamicBitset bs(100);
  bs.set(5);
  bs.set(77);
  EXPECT_EQ(bs.findNext(0), 5u);
  EXPECT_EQ(bs.findNext(5), 5u);
  EXPECT_EQ(bs.findNext(6), 77u);
  EXPECT_EQ(bs.findNext(78), 100u);
}

TEST(DynamicBitset, ForEachSetAscending) {
  DynamicBitset bs(150);
  const std::vector<std::size_t> want{3, 64, 65, 149};
  for (auto i : want) bs.set(i);
  std::vector<std::size_t> got;
  bs.forEachSet([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
  EXPECT_EQ(bs.toIndices(), want);
}

TEST(DynamicBitset, SpliceFrom) {
  const std::size_t n = 100;
  DynamicBitset a(n), b(n), c(n);
  for (std::size_t i = 0; i < n; i += 2) a.set(i);   // even bits
  for (std::size_t i = 1; i < n; i += 2) b.set(i);   // odd bits
  for (std::size_t point : {0UL, 1UL, 37UL, 64UL, 99UL, 100UL}) {
    c.spliceFrom(a, b, point);
    for (std::size_t i = 0; i < n; ++i) {
      const bool want = i < point ? a.test(i) : b.test(i);
      ASSERT_EQ(c.test(i), want) << "point=" << point << " i=" << i;
    }
  }
}

TEST(DynamicBitset, BitwiseOps) {
  DynamicBitset a(80), b(80);
  a.set(1);
  a.set(70);
  b.set(1);
  b.set(2);
  DynamicBitset o = a;
  o |= b;
  EXPECT_EQ(o.count(), 3u);
  DynamicBitset n = a;
  n &= b;
  EXPECT_EQ(n.count(), 1u);
  DynamicBitset x = a;
  x ^= b;
  EXPECT_EQ(x.count(), 2u);
  EXPECT_TRUE(x.test(2) && x.test(70));
}

TEST(DynamicBitset, OrWithMergesWordLevel) {
  // Spans three words so the word loop (not just word 0) is exercised.
  DynamicBitset acc(180), other(180);
  acc.set(0);
  acc.set(64);
  other.set(64);
  other.set(65);
  other.set(179);
  DynamicBitset& ref = acc.orWith(other);
  EXPECT_EQ(&ref, &acc);  // chainable, modifies in place
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_TRUE(acc.test(0) && acc.test(64) && acc.test(65) && acc.test(179));
  // `other` is untouched, and equality with the operator form holds.
  EXPECT_EQ(other.count(), 3u);
  DynamicBitset viaOperator(180);
  viaOperator.set(0);
  viaOperator.set(64);
  viaOperator |= other;
  EXPECT_EQ(acc, viaOperator);

  DynamicBitset wrongSize(64);
  EXPECT_THROW(acc.orWith(wrongSize), Error);
}

// ----------------------------------------------------------------- table

TEST(Table, WithThousands) {
  EXPECT_EQ(withThousands(std::uint64_t{0}), "0");
  EXPECT_EQ(withThousands(std::uint64_t{999}), "999");
  EXPECT_EQ(withThousands(std::uint64_t{1000}), "1,000");
  EXPECT_EQ(withThousands(std::uint64_t{1234567}), "1,234,567");
  EXPECT_EQ(withThousands(std::int64_t{-1234}), "-1,234");
}

TEST(Table, FormatMinSec) {
  EXPECT_EQ(formatMinSec(0.0), "00:00");
  EXPECT_EQ(formatMinSec(7.4), "00:07");
  EXPECT_EQ(formatMinSec(61.0), "01:01");
  EXPECT_EQ(formatMinSec(5521.0), "92:01");
}

TEST(Table, RenderAlignsColumns) {
  TextTable t({"name", "value"});
  t.setAlign(0, TextTable::Align::Left);
  t.addRow({"a", "1"});
  t.addRow({"longer", "12345"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name   | value"), std::string::npos);
  EXPECT_NE(out.find("longer |"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), Error);
}

TEST(Table, CsvEscaping) {
  TextTable t({"x"});
  t.addRow({"plain"});
  t.addRow({"with,comma"});
  t.addRow({"with\"quote"});
  const std::string csv = t.renderCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

// --------------------------------------------------------------- strings

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("  \t\n "), "");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, SplitWhitespace) {
  EXPECT_EQ(splitWhitespace("  a\t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Strings, ParseUnsigned) {
  EXPECT_EQ(parseUnsigned("42", "t"), 42u);
  EXPECT_EQ(parseUnsigned("  7 ", "t"), 7u);
  EXPECT_THROW(parseUnsigned("x", "t"), ParseError);
  EXPECT_THROW(parseUnsigned("", "t"), ParseError);
  EXPECT_THROW(parseUnsigned("-3", "t"), ParseError);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parseDouble("2.5", "t"), 2.5);
  EXPECT_THROW(parseDouble("abc", "t"), ParseError);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  // One escape per UTF-8 length class: 1, 2, 3 bytes.
  EXPECT_EQ(json::parse("\"\\u0041\"").asString(), "A");
  EXPECT_EQ(json::parse("\"\\u00e9\"").asString(), "\xc3\xa9");      // é
  EXPECT_EQ(json::parse("\"\\u20ac\"").asString(), "\xe2\x82\xac");  // €
}

TEST(Json, SurrogatePairsRecombine) {
  // U+1D11E (musical G clef) = \uD834\uDD1E -> 4-byte UTF-8.
  EXPECT_EQ(json::parse("\"\\ud834\\udd1e\"").asString(),
            "\xf0\x9d\x84\x9e");
  // U+10000, the first supplementary code point (low edge of the range).
  EXPECT_EQ(json::parse("\"\\ud800\\udc00\"").asString(),
            "\xf0\x90\x80\x80");
  // U+10FFFF, the last code point (high edge).
  EXPECT_EQ(json::parse("\"\\udbff\\udfff\"").asString(),
            "\xf4\x8f\xbf\xbf");
  // Pairs embedded in surrounding text survive.
  EXPECT_EQ(json::parse("\"a\\ud834\\udd1ez\"").asString(),
            "a\xf0\x9d\x84\x9ez");
}

TEST(Json, LoneSurrogatesAreParseErrors) {
  // High surrogate at end of string, or followed by a non-escape.
  EXPECT_THROW(json::parse("\"\\ud834\""), ParseError);
  EXPECT_THROW(json::parse("\"\\ud834x\""), ParseError);
  // High surrogate followed by an escape that is not a low surrogate.
  EXPECT_THROW(json::parse("\"\\ud834\\u0041\""), ParseError);
  // High surrogate followed by another high surrogate.
  EXPECT_THROW(json::parse("\"\\ud834\\ud834\""), ParseError);
  // Low surrogate with no preceding high surrogate.
  EXPECT_THROW(json::parse("\"\\udd1e\""), ParseError);
}

TEST(Json, SupplementaryPlaneRoundTripsThroughWriter) {
  // parse -> serialize -> parse is the writer/reader contract: the
  // serializer emits the raw UTF-8 bytes and the parser accepts them.
  const std::string decoded = json::parse("\"\\ud834\\udd1e e\\u0301\"")
                                  .asString();
  const std::string serialized = json::serialize(json::Value(decoded));
  EXPECT_EQ(json::parse(serialized).asString(), decoded);
}

TEST(ParallelEnv, ParseEnvCountAcceptsPlainIntegers) {
  const auto p = detail::parseEnvCount("8", 3, 1, 1024);
  EXPECT_EQ(p.value, 8u);
  EXPECT_FALSE(p.usedFallback);
  EXPECT_FALSE(p.clamped);
}

TEST(ParallelEnv, ParseEnvCountFallsBackOnGarbage) {
  for (const char* text : {"abc", "4x", "1.5", "", " 8", "8 ", "--2"}) {
    const auto p = detail::parseEnvCount(text, 3, 1, 1024);
    EXPECT_EQ(p.value, 3u) << '"' << text << '"';
    EXPECT_TRUE(p.usedFallback) << '"' << text << '"';
    EXPECT_FALSE(p.clamped) << '"' << text << '"';
  }
  // Unset variable (null) is a silent fallback too.
  const auto p = detail::parseEnvCount(nullptr, 5, 1, 1024);
  EXPECT_EQ(p.value, 5u);
  EXPECT_TRUE(p.usedFallback);
}

TEST(ParallelEnv, ParseEnvCountFallsBackOnNonPositive) {
  for (const char* text : {"0", "-1", "-9223372036854775807"}) {
    const auto p = detail::parseEnvCount(text, 4, 1, 1024);
    EXPECT_EQ(p.value, 4u) << '"' << text << '"';
    EXPECT_TRUE(p.usedFallback) << '"' << text << '"';
  }
}

TEST(ParallelEnv, ParseEnvCountClampsOutOfRange) {
  // Above the cap (including values that overflow long long).
  for (const char* text : {"4097", "99999999999999999999999999"}) {
    const auto p = detail::parseEnvCount(text, 4, 2, 4096);
    EXPECT_EQ(p.value, 4096u) << '"' << text << '"';
    EXPECT_TRUE(p.clamped) << '"' << text << '"';
    EXPECT_FALSE(p.usedFallback) << '"' << text << '"';
  }
  // Below the floor.
  const auto p = detail::parseEnvCount("1", 4, 2, 4096);
  EXPECT_EQ(p.value, 2u);
  EXPECT_TRUE(p.clamped);
}

TEST(ParallelEnv, BoundsAreSane) {
  EXPECT_GE(detail::kMaxThreads, 64u);
  EXPECT_GE(detail::kMaxGrain, std::size_t{1} << 20);
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.toString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::dataLoss("truncated checkpoint");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.message(), "truncated checkpoint");
  EXPECT_EQ(s.toString(), "DATA_LOSS: truncated checkpoint");
  EXPECT_EQ(Status::internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::failedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::invalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::unavailable("x").code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace rrsn

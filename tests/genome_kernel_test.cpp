// Property tests of the hybrid genome kernel: sparse/dense path
// equivalence across the representation-switch threshold, incremental
// objective bookkeeping against full evaluation, and the weighted
// prefix index against its brute-force definition.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "moo/ea_common.hpp"
#include "moo/genome.hpp"
#include "support/parallel.hpp"

namespace rrsn::moo {
namespace {

LinearBiProblem randomProblem(std::size_t bits, Rng& rng) {
  LinearBiProblem p;
  p.cost.reserve(bits);
  p.gain.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    p.cost.push_back(rng.below(1000) + 1);
    p.gain.push_back(rng.below(1000) + 1);
  }
  return p;
}

std::vector<std::uint32_t> randomOnes(std::size_t bits, std::size_t count,
                                      Rng& rng) {
  const auto sampled = rng.sampleIndices(bits, count);
  return {sampled.begin(), sampled.end()};
}

/// A genome logically equal to `g` but held in the dense representation,
/// parked inside the hysteresis band: bits are added until the genome
/// converts upward, then removed again.  Requires ones*16 >= bits so the
/// removals do not convert it back.
Genome denseTwin(const Genome& g) {
  Genome d(g.bits(), g.indices());
  std::vector<std::uint32_t> extra;
  for (std::uint32_t i = 0;
       i < g.bits() && d.rep() != Genome::Rep::Dense; ++i) {
    if (!d.test(i)) {
      d.flip(i);
      extra.push_back(i);
    }
  }
  for (std::uint32_t i : extra) d.flip(i);
  return d;
}

constexpr std::size_t kBits = 1024;
// 90 ones: 90 * 8 < 1024 (a fresh build stays sparse) and 90 * 16 >=
// 1024 (a dense genome stays dense) — squarely inside the hysteresis
// band, so the same bit content exists in both representations.
constexpr std::size_t kBandOnes = 90;

TEST(HybridRep, ThresholdsWithHysteresis) {
  // Fresh construction crosses to dense at ones * 8 >= bits.
  Rng rng(7);
  EXPECT_EQ(Genome(kBits, randomOnes(kBits, kBits / 8 - 1, rng)).rep(),
            Genome::Rep::Sparse);
  EXPECT_EQ(Genome(kBits, randomOnes(kBits, kBits / 8, rng)).rep(),
            Genome::Rep::Dense);
  // Going back down, the conversion waits for ones * 16 < bits.
  Genome g(kBits, randomOnes(kBits, kBits / 8, rng));
  while (g.ones() >= kBits / 16) {
    ASSERT_EQ(g.rep(), Genome::Rep::Dense) << "ones=" << g.ones();
    const auto idx = g.indices();
    g.flip(idx.front());
  }
  EXPECT_EQ(g.rep(), Genome::Rep::Sparse);
}

TEST(HybridRep, TwinsInsideTheBandAgreeEverywhere) {
  Rng rng(21);
  const LinearBiProblem problem = randomProblem(kBits, rng);
  const std::uint64_t damageTotal = problem.damageTotal();
  const Genome s(kBits, randomOnes(kBits, kBandOnes, rng));
  const Genome d = denseTwin(s);
  ASSERT_EQ(s.rep(), Genome::Rep::Sparse);
  ASSERT_EQ(d.rep(), Genome::Rep::Dense);
  EXPECT_TRUE(s == d);
  EXPECT_TRUE(d == s);
  EXPECT_EQ(s.ones(), d.ones());
  EXPECT_EQ(s.indices(), d.indices());
  for (std::uint32_t i = 0; i < kBits; ++i)
    ASSERT_EQ(s.test(i), d.test(i)) << "bit " << i;
  for (std::size_t p = 0; p <= kBits; p += 13)
    ASSERT_EQ(s.countBelow(p), d.countBelow(p)) << "point " << p;
  EXPECT_EQ(evaluate(problem, s, damageTotal),
            evaluate(problem, d, damageTotal));
}

TEST(HybridRep, CrossoverAgreesAcrossAllRepCombinations) {
  Rng rng(33);
  const Genome a(kBits, randomOnes(kBits, kBandOnes, rng));
  const Genome b(kBits, randomOnes(kBits, kBandOnes, rng));
  const Genome da = denseTwin(a);
  const Genome db = denseTwin(b);
  ASSERT_EQ(da.rep(), Genome::Rep::Dense);
  ASSERT_EQ(db.rep(), Genome::Rep::Dense);
  for (std::size_t point = 0; point <= kBits; point += 61) {
    const Genome ref = Genome::crossover(a, b, point);
    // Bitwise definition: child bit i comes from a below the point,
    // from b at or above it.
    for (std::uint32_t i = 0; i < kBits; ++i)
      ASSERT_EQ(ref.test(i), i < point ? a.test(i) : b.test(i))
          << "point " << point << " bit " << i;
    EXPECT_TRUE(Genome::crossover(a, db, point) == ref) << "point " << point;
    EXPECT_TRUE(Genome::crossover(da, b, point) == ref) << "point " << point;
    EXPECT_TRUE(Genome::crossover(da, db, point) == ref) << "point " << point;
  }
}

TEST(HybridRep, MutationStreamsAgreeAcrossReps) {
  Rng setup(45);
  const Genome s(kBits, randomOnes(kBits, kBandOnes, setup));
  const Genome d = denseTwin(s);
  Genome ms = s;
  Genome md = d;
  Rng r1(99);
  Rng r2(99);
  for (int round = 0; round < 20; ++round) {
    ms.mutatePerBit(0.02, r1);
    md.mutatePerBit(0.02, r2);
    ASSERT_TRUE(ms == md) << "round " << round;
  }
}

TEST(WeightIndexTest, BelowMatchesBruteForceInBothReps) {
  Rng rng(57);
  const LinearBiProblem problem = randomProblem(kBits, rng);
  const Genome s(kBits, randomOnes(kBits, kBandOnes, rng));
  const Genome d = denseTwin(s);
  for (const Genome* g : {&s, &d}) {
    const WeightIndex& wi = g->weightIndex(problem);
    for (std::size_t point = 0; point <= kBits;
         point += (point % 3) + 1) {  // dense-ish sweep incl. word edges
      WeightIndex::Prefix want;
      g->forEachOneInRange(0, point, [&](std::uint32_t i) {
        want.cost += problem.cost[i];
        want.gain += problem.gain[i];
        ++want.ones;
      });
      const WeightIndex::Prefix got = wi.below(*g, point);
      ASSERT_EQ(got.cost, want.cost) << "point " << point;
      ASSERT_EQ(got.gain, want.gain) << "point " << point;
      ASSERT_EQ(got.ones, want.ones) << "point " << point;
    }
    const WeightIndex::Prefix total = wi.below(*g, kBits);
    EXPECT_EQ(wi.total().cost, total.cost);
    EXPECT_EQ(wi.total().gain, total.gain);
    EXPECT_EQ(wi.total().ones, total.ones);
  }
}

TEST(IncrementalObjectives, RandomFlipSequencesMatchFullEvaluate) {
  Rng rng(69);
  const LinearBiProblem problem = randomProblem(kBits, rng);
  const std::uint64_t damageTotal = problem.damageTotal();
  // Start in the band so the walk crosses representation switches in
  // both directions while the bookkeeping must stay exact.
  Genome g(kBits, randomOnes(kBits, kBandOnes, rng));
  Objectives obj = evaluate(problem, g, damageTotal);
  for (int round = 0; round < 200; ++round) {
    const auto sampled = rng.sampleIndices(kBits, rng.below(40));
    const std::vector<std::uint32_t> flips(sampled.begin(), sampled.end());
    g.applyFlips(flips, [&](std::uint32_t idx, bool nowSet) {
      if (nowSet) {
        obj.cost += problem.cost[idx];
        obj.damage -= problem.gain[idx];
      } else {
        obj.cost -= problem.cost[idx];
        obj.damage += problem.gain[idx];
      }
    });
    ASSERT_EQ(obj, evaluate(problem, g, damageTotal)) << "round " << round;
  }
}

TEST(IncrementalObjectives, CrossoverObjectivesFromPrefixSums) {
  Rng rng(81);
  const LinearBiProblem problem = randomProblem(kBits, rng);
  const std::uint64_t damageTotal = problem.damageTotal();
  std::vector<Individual> pool(4);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i].genome = Genome::random(kBits, 0.05 + 0.1 * static_cast<double>(i),
                                    rng);
    pool[i].obj = evaluate(problem, pool[i].genome, damageTotal);
  }
  for (int round = 0; round < 100; ++round) {
    detail::VariationPlan plan;
    plan.parentA = rng.below(pool.size());
    plan.parentB = rng.below(pool.size());
    plan.crossover = rng.chance(0.9);
    plan.point = rng.below(kBits + 1);
    const auto sampled = rng.sampleIndices(kBits, rng.below(10));
    plan.flips.assign(sampled.begin(), sampled.end());
    const Individual child =
        detail::applyVariationPlan(problem, damageTotal, pool, plan);
    ASSERT_EQ(child.obj, evaluate(problem, child.genome, damageTotal))
        << "round " << round;
  }
}

TEST(OffspringBatch, BitIdenticalAtAnyThreadCount) {
  Rng rng(93);
  const LinearBiProblem problem = randomProblem(kBits, rng);
  const std::uint64_t damageTotal = problem.damageTotal();
  EvolutionOptions options;
  options.populationSize = 24;
  Rng init(5);
  std::vector<Individual> pool =
      detail::initialPopulation(problem, damageTotal, options, init);
  const auto batch = [&](std::size_t threads) {
    setThreadCount(threads);
    Rng r(11);
    const auto tournament = [&]() -> std::size_t {
      const std::size_t a = r.below(pool.size());
      const std::size_t b = r.below(pool.size());
      return pool[a].obj.cost <= pool[b].obj.cost ? a : b;
    };
    return detail::makeOffspringBatch(problem, damageTotal, pool, 48, options,
                                      tournament, r);
  };
  const auto serial = batch(1);
  const auto pooled = batch(4);
  setThreadCount(0);  // restore the environment-configured pool
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].genome == pooled[i].genome) << "offspring " << i;
    ASSERT_EQ(serial[i].obj, pooled[i].obj) << "offspring " << i;
  }
}

TEST(GenomeBuilders, AllOnesMatchesExplicitIndexList) {
  for (std::size_t bits : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                           std::size_t{64}, std::size_t{1000}}) {
    const Genome g = Genome::allOnes(bits);
    EXPECT_EQ(g.ones(), bits);
    std::vector<std::uint32_t> all(bits);
    for (std::uint32_t i = 0; i < bits; ++i) all[i] = i;
    EXPECT_TRUE(g == Genome(bits, std::move(all))) << "bits " << bits;
  }
}

TEST(GenomeBuilders, SampleIndicesIntoMatchesVectorPath) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (std::size_t k : {std::size_t{0}, std::size_t{5}, std::size_t{200},
                          std::size_t{900}}) {
      Rng r1(seed);
      Rng r2(seed);
      const auto viaVector = r1.sampleIndices(1000, k);
      DynamicBitset viaBitset;
      r2.sampleIndicesInto(1000, k, viaBitset);
      EXPECT_EQ(viaVector, viaBitset.toIndices()) << "seed " << seed;
      // Identical draws => identical generator states afterwards.
      EXPECT_EQ(r1.next(), r2.next()) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rrsn::moo

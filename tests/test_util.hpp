// Shared helpers for the test suite: a random hierarchical RSN generator
// (for property tests comparing the fast analysis against the oracles)
// and a random-spec shortcut.
#pragma once

#include <string>

#include "rsn/builder.hpp"
#include "rsn/network.hpp"
#include "rsn/spec.hpp"
#include "support/rng.hpp"

namespace rrsn::test {

/// Parameters of the random network generator.
struct RandomNetOptions {
  std::size_t targetSegments = 30;
  double sibProbability = 0.4;   ///< chance a unit is a SIB vs a plain mux
  double nestProbability = 0.5;  ///< chance a mux/SIB content nests deeper
  std::uint32_t maxSegmentLength = 6;
  std::uint32_t maxMuxBranches = 3;
};

/// Builds a random valid hierarchical SP network.  Deterministic in rng.
inline rsn::Network randomNetwork(Rng& rng, const RandomNetOptions& opt = {}) {
  rsn::NetworkBuilder b("random");
  std::size_t segCounter = 0;
  std::size_t muxCounter = 0;

  const auto makeSegment = [&](bool withInstrument) {
    const std::string id = std::to_string(segCounter++);
    const auto len = static_cast<std::uint32_t>(
        rng.range(1, static_cast<std::int64_t>(opt.maxSegmentLength)));
    return b.segment("s" + id, len, withInstrument ? "i" + id : std::string{});
  };

  // Recursive unit builder: returns a handle, consuming budget.
  const auto unit = [&](auto&& self, std::size_t depth) -> rsn::NodeId {
    if (segCounter >= opt.targetSegments || depth > 4 ||
        !rng.chance(opt.nestProbability)) {
      return makeSegment(true);
    }
    // Chain of 1..3 sub-units.
    std::vector<rsn::NodeId> parts;
    const auto count = static_cast<std::size_t>(rng.range(1, 3));
    for (std::size_t k = 0; k < count && segCounter < opt.targetSegments; ++k)
      parts.push_back(self(self, depth + 1));
    if (parts.empty()) parts.push_back(makeSegment(true));
    const rsn::NodeId content =
        parts.size() == 1 ? parts[0] : b.chain(std::move(parts));
    if (rng.chance(opt.sibProbability)) {
      return b.sib("sib" + std::to_string(muxCounter++), content);
    }
    std::vector<rsn::NodeId> branches{content};
    const auto extra = static_cast<std::size_t>(
        rng.range(1, static_cast<std::int64_t>(opt.maxMuxBranches) - 1));
    for (std::size_t k = 0; k < extra; ++k) {
      branches.push_back(rng.chance(0.5) ? b.wire() : makeSegment(true));
    }
    return b.mux("m" + std::to_string(muxCounter++), std::move(branches));
  };

  std::vector<rsn::NodeId> top;
  top.push_back(makeSegment(false));  // leading config/dummy segment
  while (segCounter < opt.targetSegments) top.push_back(unit(unit, 0));
  b.setTop(b.chain(std::move(top)));
  return b.build();
}

/// Random spec with the paper's 70/70/10/10 recipe.
inline rsn::CriticalitySpec randomSpecFor(const rsn::Network& net, Rng& rng) {
  return rsn::randomSpec(net, rsn::SpecOptions{}, rng);
}

}  // namespace rrsn::test

// The parallel runtime's two promises: (1) the primitives behave like
// their serial counterparts including exception propagation, and (2)
// every public analysis result is byte-identical whatever RRSN_THREADS
// is — damage vectors, fault dictionaries and fixed-seed EA archives.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>

#include "benchgen/registry.hpp"
#include "crit/analyzer.hpp"
#include "diag/diagnosis.hpp"
#include "harden/hardening.hpp"
#include "moo/spea2.hpp"
#include "rsn/example_networks.hpp"
#include "rsn/spec.hpp"
#include "support/parallel.hpp"

namespace rrsn {
namespace {

/// Runs fn with the pool fixed at `n` workers, then restores 1 worker so
/// tests stay order-independent.
template <typename Fn>
auto withThreads(std::size_t n, Fn&& fn) {
  setThreadCount(n);
  auto result = fn();
  setThreadCount(1);
  return result;
}

// ------------------------------------------------------------ primitives

TEST(Parallel, ThreadCountFollowsSetThreadCount) {
  setThreadCount(3);
  EXPECT_EQ(threadCount(), 3u);
  setThreadCount(1);
  EXPECT_EQ(threadCount(), 1u);
}

TEST(Parallel, ForCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    setThreadCount(threads);
    const std::size_t n = 10'000;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
  setThreadCount(1);
}

TEST(Parallel, MapProducesSlotPerIndex) {
  const auto squares = withThreads(4, [] {
    return parallelMap<std::uint64_t>(
        2'000, [](std::size_t i) { return std::uint64_t{i} * i; });
  });
  ASSERT_EQ(squares.size(), 2'000u);
  for (std::size_t i = 0; i < squares.size(); ++i)
    ASSERT_EQ(squares[i], std::uint64_t{i} * i);
}

TEST(Parallel, ReduceMatchesSerialSumAndIsThreadCountIndependent) {
  const std::size_t n = 12'345;
  const auto sumAt = [&](std::size_t threads) {
    return withThreads(threads, [&] {
      return parallelReduce<std::uint64_t>(
          n, 0, [](std::size_t i) { return std::uint64_t{i}; },
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
    });
  };
  EXPECT_EQ(sumAt(1), std::uint64_t{n} * (n - 1) / 2);
  EXPECT_EQ(sumAt(1), sumAt(4));

  // Floating-point: the chunked association must not depend on the pool
  // width, so the bits agree too.
  const auto fsumAt = [&](std::size_t threads) {
    return withThreads(threads, [&] {
      return parallelReduce<double>(
          n, 0.0, [](std::size_t i) { return 1.0 / (1.0 + static_cast<double>(i)); },
          [](double a, double b) { return a + b; });
    });
  };
  EXPECT_EQ(fsumAt(1), fsumAt(4));
  EXPECT_EQ(fsumAt(2), fsumAt(7));
}

TEST(Parallel, ExceptionsPropagateToCaller) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    setThreadCount(threads);
    EXPECT_THROW(
        parallelFor(4'096,
                    [](std::size_t i) {
                      if (i == 2'000) throw Error("boom");
                    }),
        Error);
  }
  setThreadCount(1);
}

TEST(Parallel, NestedRegionsRunInline) {
  const auto total = withThreads(4, [] {
    std::atomic<std::uint64_t> sum{0};
    parallelFor(64, [&](std::size_t) {
      parallelFor(64, [&](std::size_t j) {
        sum.fetch_add(j, std::memory_order_relaxed);
      });
    });
    return sum.load();
  });
  EXPECT_EQ(total, 64u * (64u * 63u / 2u));
}

// ---------------------------------------------------------- cancellation

TEST(Cancellation, CancelIsLatching) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());  // stays cancelled
}

TEST(Cancellation, DeadlineTripsTheToken) {
  CancellationToken token;
  token.setDeadlineFromNow(std::chrono::hours(1));
  EXPECT_FALSE(token.cancelled());
  token.setDeadlineFromNow(std::chrono::nanoseconds(0));
  EXPECT_TRUE(token.cancelled());
  // The deadline latches: clearing it afterwards cannot un-cancel.
  token.clearDeadline();
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancellation, ClearDeadlineBeforeExpiryKeepsTokenLive) {
  CancellationToken token;
  token.setDeadlineFromNow(std::chrono::hours(1));
  token.clearDeadline();
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancellation, NullTokenRunsEveryIndex) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    setThreadCount(threads);
    const std::size_t n = 4'096;
    std::vector<std::atomic<int>> hits(n);
    parallelForCancellable(n, nullptr, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
  setThreadCount(1);
}

TEST(Cancellation, UntrippedTokenRunsEveryIndex) {
  const std::size_t n = 4'096;
  std::vector<std::atomic<int>> hits(n);
  CancellationToken token;
  withThreads(4, [&] {
    parallelForCancellable(n, &token, [&](std::size_t i) { ++hits[i]; });
    return 0;
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(Cancellation, PreCancelledTokenRunsNothing) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    setThreadCount(threads);
    CancellationToken token;
    token.cancel();
    std::atomic<std::size_t> ran{0};
    parallelForCancellable(4'096, &token, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 0u);
  }
  setThreadCount(1);
}

TEST(Cancellation, MidRunCancelSkipsWorkButNeverDuplicates) {
  // Cancel once a prefix of the work has run.  The contract is weak on
  // purpose (running chunks finish, unstarted chunks are skipped), so
  // assert exactly what callers may rely on: every index runs at most
  // once, and at least the triggering index ran.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    setThreadCount(threads);
    const std::size_t n = 50'000;
    std::vector<std::atomic<int>> hits(n);
    CancellationToken token;
    std::atomic<std::size_t> ran{0};
    parallelForCancellable(n, &token, [&](std::size_t i) {
      ++hits[i];
      if (ran.fetch_add(1) == 64) token.cancel();
    });
    EXPECT_TRUE(token.cancelled());
    EXPECT_GE(ran.load(), 65u);
    EXPECT_LT(ran.load(), n);  // the tail never started
    for (std::size_t i = 0; i < n; ++i) ASSERT_LE(hits[i].load(), 1);
  }
  setThreadCount(1);
}

// ----------------------------------------------------------- determinism
//
// The hard requirement of the runtime: public results must not depend on
// the thread count.  Each case computes the same artifact at 1 and 4
// workers and compares for exact equality.

TEST(ParallelDeterminism, CriticalityDamagesMatchAcrossThreadCounts) {
  const rsn::Network net = benchgen::buildBenchmark("MBIST_1_5_5");
  Rng rng(7);
  const rsn::CriticalitySpec spec = rsn::randomSpec(net, {}, rng);
  const auto run = [&] {
    return crit::CriticalityAnalyzer(net, spec).run().damages();
  };
  const auto serial = withThreads(1, run);
  const auto pooled = withThreads(4, run);
  EXPECT_EQ(serial, pooled);

  const auto oracle = [&] {
    return crit::bruteForceAnalysis(net, spec).damages();
  };
  EXPECT_EQ(withThreads(1, oracle), withThreads(4, oracle));
}

TEST(ParallelDeterminism, FaultDictionarySyndromesMatchAcrossThreadCounts) {
  const rsn::Network net = rsn::makeFig1Network();
  const auto serial = withThreads(1, [&] { return diag::FaultDictionary::build(net); });
  const auto pooled = withThreads(4, [&] { return diag::FaultDictionary::build(net); });
  ASSERT_EQ(serial.faults().size(), pooled.faults().size());
  EXPECT_EQ(serial.faultFreeSyndrome(), pooled.faultFreeSyndrome());
  for (std::size_t k = 0; k < serial.faults().size(); ++k) {
    ASSERT_EQ(serial.faults()[k], pooled.faults()[k]);
    ASSERT_EQ(serial.syndromeOf(k), pooled.syndromeOf(k)) << "fault " << k;
  }
}

TEST(ParallelDeterminism, Spea2ArchiveMatchesAcrossThreadCounts) {
  const rsn::Network net = benchgen::buildBenchmark("MBIST_1_5_5");
  Rng rng(11);
  const rsn::CriticalitySpec spec = rsn::randomSpec(net, {}, rng);
  const auto analysis = crit::CriticalityAnalyzer(net, spec).run();
  const auto problem = harden::HardeningProblem::assemble(net, analysis);
  moo::EvolutionOptions options;
  options.populationSize = 40;
  options.generations = 25;
  options.seed = 2022;
  const auto run = [&] { return moo::runSpea2(problem.linear, options); };
  const auto serial = withThreads(1, run);
  const auto pooled = withThreads(4, run);
  ASSERT_EQ(serial.archive.members().size(), pooled.archive.members().size());
  for (std::size_t i = 0; i < serial.archive.members().size(); ++i)
    ASSERT_TRUE(serial.archive.members()[i] == pooled.archive.members()[i])
        << "archive member " << i;
  EXPECT_EQ(serial.stats.evaluations, pooled.stats.evaluations);
}

}  // namespace
}  // namespace rrsn

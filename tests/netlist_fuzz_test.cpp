// Robustness corpus for the netlist front end.
//
// Every malformed input below must be rejected with ParseError or
// ValidationError — never a crash, a hang, an uncaught std exception or
// a silently mis-built network.  The corpus covers the failure classes
// a fuzzer finds first: truncated blocks, duplicate names, muxes
// controlled from inside their own branches, absurd or truncating
// segment lengths, NUL bytes and overlong tokens, and pathological
// nesting that would otherwise exhaust the parser stack.
//
// Every corpus entry is additionally fed through the lenient lint
// pipeline, which must turn the rejection into at least one
// error-severity finding — never a crash and never a clean report.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "rsn/netlist_io.hpp"
#include "rsn/network.hpp"
#include "support/error.hpp"

namespace rrsn {
namespace {

/// The netlist must be rejected with the library's input-error types.
void expectRejected(const std::string& text, const std::string& label) {
  try {
    (void)rsn::parseNetlistString(text);
    FAIL() << label << ": malformed netlist was accepted";
  } catch (const ParseError&) {
  } catch (const ValidationError&) {
  } catch (const std::exception& e) {
    FAIL() << label << ": wrong exception type: " << e.what();
  }
  // The linter sees the same defect as findings, not exceptions.
  const lint::LintedNetlist linted = lint::lintNetlistText(text);
  EXPECT_FALSE(linted.net.has_value())
      << label << ": linter accepted a rejected netlist";
  EXPECT_GE(linted.result.errors, 1u)
      << label << ": rejection produced a clean lint report";
}

TEST(NetlistFuzz, TruncatedBlocks) {
  const std::vector<std::string> corpus = {
      "",
      "network",
      "network n",
      "network n {",
      "network n { chain {",
      "network n { segment s",
      "network n { segment s len=",
      "network n { segment s len=4",
      "network n { sib s {",
      "network n { sib s { segment a; }",
      "network n { mux m { branch { wire; }",
      "network n { mux m { branch { segment a; } branch {",
      "network n { chain { segment a; } ",  // missing closing '}'
  };
  for (const std::string& text : corpus) expectRejected(text, text);
}

TEST(NetlistFuzz, TrailingGarbage) {
  expectRejected("network n { segment a; } }", "extra brace");
  expectRejected("network n { segment a; } network m { segment b; }",
                 "second network");
  expectRejected("network n { segment a; } garbage", "trailing word");
}

TEST(NetlistFuzz, DuplicateNames) {
  expectRejected("network n { chain { segment a; segment a; } }",
                 "duplicate segment");
  expectRejected(
      "network n { chain {"
      " mux m { branch { segment a; } branch { wire; } }"
      " mux m { branch { segment b; } branch { wire; } } } }",
      "duplicate mux");
  expectRejected(
      "network n { chain {"
      " segment a instrument=i; segment b instrument=i; } }",
      "duplicate instrument");
  expectRejected("network n { chain { sib s { wire; } segment s; } }",
                 "sib register name reused by a segment");
}

TEST(NetlistFuzz, SelfReferentialMuxControl) {
  // The control register sits inside the mux's own branch: selecting the
  // branch would require a write that needs the selection already made.
  expectRejected(
      "network n { mux m ctrl=c {"
      " branch { segment c; } branch { wire; } } }",
      "control segment in first branch");
  expectRejected(
      "network n { mux m ctrl=c {"
      " branch { wire; } branch { chain { segment x; segment c; } } } }",
      "control segment nested in second branch");
  // Forward reference to a segment declared after the mux is equally
  // invalid (the builder resolves ctrl against already-known segments).
  expectRejected(
      "network n { chain {"
      " mux m ctrl=later { branch { segment a; } branch { wire; } }"
      " segment later; } }",
      "forward control reference");
  expectRejected("network n { mux m ctrl=ghost { branch { segment a; }"
                 " branch { wire; } } }",
                 "unknown control segment");
}

TEST(NetlistFuzz, AbsurdSegmentLengths) {
  expectRejected("network n { segment s len=0; }", "zero length");
  expectRejected("network n { segment s len=4294967297; }",
                 "length that truncates to 1 in 32 bits");
  expectRejected("network n { segment s len=18446744073709551615; }",
                 "uint64 max length");
  expectRejected("network n { segment s len=99999999999999999999999999; }",
                 "length overflowing uint64");
  expectRejected("network n { segment s len=1048577; }",
                 "length beyond the documented cap");
  // The cap itself is representable and must still parse.
  EXPECT_NO_THROW(
      (void)rsn::parseNetlistString("network n { segment s len=1048576; }"));
}

TEST(NetlistFuzz, HostileTokens) {
  expectRejected(std::string("network n { segment ") + '\0' + "; }",
                 "NUL byte as a name");
  expectRejected(std::string("network n { segment a") + '\0' + "b; }",
                 "NUL byte inside a name");
  expectRejected(std::string("network n { segment ") + '\x01' + "bad; }",
                 "control character");
  expectRejected("network n { segment s len=--4; }", "mangled number");
  expectRejected("network n { segment s foo=1; }", "unknown attribute");
  expectRejected("network n { mux m foo=1 { branch { segment a; }"
                 " branch { wire; } } }",
                 "unknown mux attribute");
  const std::string longName(5000, 'a');
  expectRejected("network n { segment " + longName + "; }", "overlong token");
  expectRejected("network " + longName + " { segment s; }",
                 "overlong network name");
}

TEST(NetlistFuzz, PathologicalNesting) {
  // Deeper than any real design; must fail fast, not smash the stack.
  std::string deep = "network n { ";
  for (int i = 0; i < 5000; ++i) deep += "chain { ";
  deep += "segment s;";
  for (int i = 0; i < 5000; ++i) deep += " }";
  deep += " }";
  expectRejected(deep, "5000-deep chain nesting");

  std::string deepSib = "network n { ";
  for (int i = 0; i < 5000; ++i)
    deepSib += "sib s" + std::to_string(i) + " { ";
  deepSib += "segment x;";
  for (int i = 0; i < 5000; ++i) deepSib += " }";
  deepSib += " }";
  expectRejected(deepSib, "5000-deep sib nesting");
}

TEST(NetlistFuzz, DegenerateMuxes) {
  expectRejected("network n { mux m { } }", "mux without branches");
  expectRejected("network n { mux m { branch { segment a; } } }",
                 "single-branch mux");
  expectRejected("network n { mux m { branch { wire; } branch { wire; } } }",
                 "mux selecting only wires");
}

TEST(NetlistFuzz, ParseCleanDefectsAreCaughtByTheLinter) {
  // Inputs the parser must accept (they are well-formed netlists) but
  // that describe structurally broken networks the linter must flag as
  // errors.  Uncovered while wiring the corpus through lintNetlistText:
  // the parser-level fuzz tests alone would pass these silently.
  const struct {
    const char* label;
    const char* text;
    const char* rule;
  } corpus[] = {
      {"1-bit control on a 3-way mux",
       "network n { chain { segment c;"
       " mux m ctrl=c { branch { segment a; } branch { segment b; }"
       " branch { segment d; } } } }",
       "struct.ctrl-width"},
      {"segment behind an unaddressable branch",
       "network n { chain { segment c;"
       " mux m ctrl=c { branch { segment a; } branch { segment b; }"
       " branch { segment d; } } } }",
       "struct.unreachable"},
  };
  for (const auto& c : corpus) {
    EXPECT_NO_THROW((void)rsn::parseNetlistString(c.text)) << c.label;
    const lint::LintedNetlist linted = lint::lintNetlistText(c.text);
    ASSERT_TRUE(linted.net.has_value()) << c.label;
    EXPECT_GE(linted.result.errors, 1u) << c.label;
    bool found = false;
    for (const auto& f : linted.result.findings)
      if (f.ruleId == c.rule) found = true;
    EXPECT_TRUE(found) << c.label << ": expected " << c.rule << "\n"
                       << lint::textReport(linted.result, c.label);
  }

  // A SIB tower inside the parser's nesting cap parses fine but must
  // draw a depth warning (the criticality walk degrades past ~64).
  std::string tower = "network n { ";
  for (int i = 0; i < 100; ++i) tower += "sib s" + std::to_string(i) + " { ";
  tower += "segment x instrument=ix;";
  for (int i = 0; i < 100; ++i) tower += " }";
  tower += " }";
  const lint::LintedNetlist deep = lint::lintNetlistText(tower);
  ASSERT_TRUE(deep.net.has_value());
  EXPECT_EQ(deep.result.errors, 0u);
  bool depthWarned = false;
  for (const auto& f : deep.result.findings)
    if (f.ruleId == "ready.depth") depthWarned = true;
  EXPECT_TRUE(depthWarned) << lint::textReport(deep.result, "tower");
}

TEST(NetlistFuzz, ValidInputsStillParse) {
  // The hardening must not reject the constructs the writer emits.
  const std::string text =
      "network ok {\n"
      "  chain {\n"
      "    segment head len=2;\n"
      "    sib gate {\n"
      "      mux sel ctrl=head {\n"
      "        branch { segment a len=4 instrument=ia; }\n"
      "        branch { segment b len=8 instrument=ib; }\n"
      "      }\n"
      "    }\n"
      "  }\n"
      "}\n";
  const rsn::Network net = rsn::parseNetlistString(text);
  EXPECT_EQ(net.name(), "ok");
  EXPECT_EQ(net.instruments().size(), 2u);
  // Round trip: writer output re-parses to an identical netlist.
  const std::string out = rsn::netlistToString(net);
  EXPECT_EQ(out, rsn::netlistToString(rsn::parseNetlistString(out)));
}

}  // namespace
}  // namespace rrsn

// Campaign benchmark: exhaustive fault-injection campaigns over the
// example networks and a slice of the Table-I benchmarks, in three
// variants per network:
//  * original  — the unhardened RSN, full single-fault universe;
//  * hardened  — the top-quartile critical primitives (by Sec. IV
//    damage) implemented as hardened cells, i.e. excluded from the
//    fault universe.  Shows how selective hardening shrinks the lost
//    set without touching the topology;
//  * augmented — the fault-tolerant skip-connectivity baseline.  Its
//    added TAP-controlled bypasses let the engine re-route around
//    defects, which shows up as Recovered classifications.
//
// The campaign cross-validates every probe against the structural
// oracles; `mismatch` (simulated vs control-aware expectation) must be 0
// everywhere, `gap` itemizes the documented control-dependency
// differences vs the plain structural analysis.
//
// Knobs: RRSN_THREADS (worker count), RRSN_CAMPAIGN_SAMPLE (0 =
// exhaustive, else per-variant sampled fault count),
// RRSN_CAMPAIGN_NETWORKS (comma list overriding the default slice).
// Artifacts: text table on stdout, BENCH_campaign.json next to it.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "crit/analyzer.hpp"
#include "harden/fault_tolerant.hpp"
#include "rsn/example_networks.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace rrsn;

rsn::Network networkByName(const std::string& name) {
  if (name == "fig1") return rsn::makeFig1Network();
  if (name == "tiny") return rsn::makeTinyNetwork();
  return benchgen::buildBenchmark(name);
}

struct VariantRow {
  std::string network;
  std::string variant;
  campaign::CampaignSummary summary;
  double seconds = 0.0;
};

VariantRow runVariant(const std::string& networkName,
                      const std::string& variant, const rsn::Network& net,
                      campaign::CampaignConfig config) {
  Stopwatch watch;
  campaign::CampaignEngine engine(net, std::move(config));
  const campaign::CampaignResult result = engine.run();
  VariantRow row;
  row.network = networkName;
  row.variant = variant;
  row.summary = result.summary();
  row.seconds = watch.seconds();
  return row;
}

/// Hardened primitives: the top quartile of the damage ranking (at least
/// one), mirroring what a min-damage hardening plan protects first.
DynamicBitset topQuartileCritical(const rsn::Network& net) {
  Rng rng(2022);
  const rsn::CriticalitySpec spec = rsn::randomSpec(net, {}, rng);
  const crit::CriticalityResult analysis =
      crit::CriticalityAnalyzer(net, spec).run();
  const std::vector<std::size_t> ranking = analysis.ranking();
  DynamicBitset hardened(net.primitiveCount());
  const std::size_t take = std::max<std::size_t>(1, ranking.size() / 4);
  for (std::size_t k = 0; k < take; ++k) hardened.set(ranking[k]);
  return hardened;
}

}  // namespace

int main() {
  const std::string networksEnv =
      bench::envOr("RRSN_CAMPAIGN_NETWORKS",
                   "fig1,tiny,MBIST_1_5_5,TreeFlat,TreeUnbalanced");
  const auto sample = static_cast<std::size_t>(
      bench::envOrU64("RRSN_CAMPAIGN_SAMPLE", 0));

  std::vector<VariantRow> rows;
  for (const std::string& name : split(networksEnv, ',')) {
    const rsn::Network net = networkByName(name);

    campaign::CampaignConfig config;
    config.sample = sample;
    rows.push_back(runVariant(name, "original", net, config));

    config.excludePrimitives = topQuartileCritical(net);
    rows.push_back(runVariant(name, "hardened", net, config));

    const harden::FaultTolerantRsn ft = harden::augmentFaultTolerant(net);
    campaign::CampaignConfig ftConfig;
    ftConfig.sample = sample;
    rows.push_back(runVariant(name, "augmented", ft.network, ftConfig));
  }

  TextTable table({"network", "variant", "faults", "pairs", "accessible",
                   "recovered", "lost", "mismatch", "gap", "seconds"});
  for (std::size_t c = 2; c < 10; ++c)
    table.setAlign(c, TextTable::Align::Right);
  for (const VariantRow& row : rows) {
    const campaign::CampaignSummary& s = row.summary;
    char seconds[32];
    std::snprintf(seconds, sizeof seconds, "%.2f", row.seconds);
    table.addRow(
        {row.network, row.variant, std::to_string(s.faultsDone),
         std::to_string(2 * s.pairsDone()),
         std::to_string(s.readAccessible + s.writeAccessible),
         std::to_string(s.readRecovered + s.writeRecovered),
         std::to_string(s.readLost + s.writeLost),
         std::to_string(s.readMismatches + s.writeMismatches),
         std::to_string(s.segmentBreakGapPairs + s.muxStuckGapPairs),
         seconds});
  }
  std::cout << "fault-injection campaign (sample="
            << (sample == 0 ? std::string("exhaustive")
                            : std::to_string(sample))
            << ")\n"
            << table.render() << '\n';

  std::size_t totalMismatches = 0;
  for (const VariantRow& row : rows)
    totalMismatches += row.summary.readMismatches + row.summary.writeMismatches;
  std::cout << (totalMismatches == 0
                    ? "OK: zero expected-vs-simulated mismatches\n"
                    : "FAIL: expected-vs-simulated mismatches present\n");

  {
    std::ofstream out("BENCH_campaign.json");
    bench::JsonWriter json(out);
    json.beginObject();
    json.kv("bench", "campaign");
    json.kv("sample", static_cast<std::uint64_t>(sample));
    json.kv("total_mismatches", static_cast<std::uint64_t>(totalMismatches));
    json.key("rows").beginArray();
    for (const VariantRow& row : rows) {
      const campaign::CampaignSummary& s = row.summary;
      json.beginObject();
      json.kv("network", row.network);
      json.kv("variant", row.variant);
      json.kv("faults", static_cast<std::uint64_t>(s.faultsDone));
      json.kv("instruments", static_cast<std::uint64_t>(s.instruments));
      json.kv("read_accessible", static_cast<std::uint64_t>(s.readAccessible));
      json.kv("read_recovered", static_cast<std::uint64_t>(s.readRecovered));
      json.kv("read_lost", static_cast<std::uint64_t>(s.readLost));
      json.kv("write_accessible",
              static_cast<std::uint64_t>(s.writeAccessible));
      json.kv("write_recovered", static_cast<std::uint64_t>(s.writeRecovered));
      json.kv("write_lost", static_cast<std::uint64_t>(s.writeLost));
      json.kv("mismatches",
              static_cast<std::uint64_t>(s.readMismatches + s.writeMismatches));
      json.kv("gap_pairs", static_cast<std::uint64_t>(s.segmentBreakGapPairs +
                                                      s.muxStuckGapPairs));
      json.kv("oracle_disagreements",
              static_cast<std::uint64_t>(s.oracleDisagreements));
      json.kv("seconds", row.seconds);
      json.endObject();
    }
    json.endArray();
    bench::writeObsMetrics(json);
    json.endObject();
    out << '\n';
  }
  std::cout << "wrote BENCH_campaign.json\n";
  return totalMismatches == 0 ? 0 : 1;
}

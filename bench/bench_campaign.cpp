// Campaign benchmark: fault-injection campaigns over the example
// networks and a slice of the Table-I benchmarks, in six variants per
// network:
//  * original        — the unhardened RSN, full single-fault universe;
//  * hardened        — the top-quartile critical primitives (by Sec. IV
//    damage) implemented as hardened cells, i.e. excluded from the
//    fault universe.  Shows how selective hardening shrinks the lost
//    set without touching the topology;
//  * augmented       — the fault-tolerant skip-connectivity baseline.
//    Its added TAP-controlled bypasses let the engine re-route around
//    defects, which shows up as Recovered classifications;
//  * pairs           — simultaneous permanent fault pairs (stratified
//    sample of the O(F^2) pair space) classified against the
//    pair-composed oracle; the robustness columns report interaction
//    effects (compounded / masked) and access retention;
//  * pairs-hardened  — the same pair campaign on the hardened universe;
//  * transient       — single-CSU-cycle upsets with a recovery re-probe
//    after reconfiguration; every access must end accessible, recovered
//    or reconfigured (zero lost, zero mismatches — acceptance gate).
//
// Single-fault and transient campaigns cross-validate every probe
// against the structural oracles; `mismatch` (simulated vs
// control-aware expectation) must be 0 everywhere, `gap` itemizes the
// documented control-dependency differences vs the plain structural
// analysis.  Pair campaigns have no hard mismatches by design (the
// composed oracle is a bound, not ground truth); their diffs surface as
// compounded/masked interaction counts instead.
//
// Knobs: RRSN_THREADS (worker count), RRSN_CAMPAIGN_SAMPLE (0 =
// exhaustive, else per-variant sampled fault count),
// RRSN_CAMPAIGN_PAIRS (pair scenarios per pair variant, default 200),
// RRSN_CAMPAIGN_NETWORKS (comma list overriding the default slice).
// Artifacts: text table on stdout, BENCH_campaign.json next to it.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "crit/analyzer.hpp"
#include "harden/fault_tolerant.hpp"
#include "rsn/example_networks.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using namespace rrsn;

rsn::Network networkByName(const std::string& name) {
  if (name == "fig1") return rsn::makeFig1Network();
  if (name == "tiny") return rsn::makeTinyNetwork();
  return benchgen::buildBenchmark(name);
}

struct VariantRow {
  std::string network;
  std::string variant;
  campaign::CampaignSummary summary;
  campaign::RobustnessReport robustness;
  double seconds = 0.0;
};

VariantRow runVariant(const std::string& networkName,
                      const std::string& variant, const rsn::Network& net,
                      campaign::CampaignConfig config) {
  Stopwatch watch;
  campaign::CampaignEngine engine(net, std::move(config));
  const campaign::CampaignResult result = engine.run();
  VariantRow row;
  row.network = networkName;
  row.variant = variant;
  row.summary = result.summary();
  row.robustness = result.robustness();
  row.seconds = watch.seconds();
  return row;
}

/// Hardened primitives: the top quartile of the damage ranking (at least
/// one), mirroring what a min-damage hardening plan protects first.
DynamicBitset topQuartileCritical(const rsn::Network& net) {
  Rng rng(2022);
  const rsn::CriticalitySpec spec = rsn::randomSpec(net, {}, rng);
  const crit::CriticalityResult analysis =
      crit::CriticalityAnalyzer(net, spec).run();
  const std::vector<std::size_t> ranking = analysis.ranking();
  DynamicBitset hardened(net.primitiveCount());
  const std::size_t take = std::max<std::size_t>(1, ranking.size() / 4);
  for (std::size_t k = 0; k < take; ++k) hardened.set(ranking[k]);
  return hardened;
}

}  // namespace

int main() {
  const std::string networksEnv =
      bench::envOr("RRSN_CAMPAIGN_NETWORKS",
                   "fig1,tiny,MBIST_1_5_5,TreeFlat,TreeUnbalanced");
  const auto sample = static_cast<std::size_t>(
      bench::envOrU64("RRSN_CAMPAIGN_SAMPLE", 0));
  const auto pairSample = static_cast<std::size_t>(
      bench::envOrU64("RRSN_CAMPAIGN_PAIRS", 200));

  std::vector<VariantRow> rows;
  for (const std::string& name : split(networksEnv, ',')) {
    const rsn::Network net = networkByName(name);
    const DynamicBitset hardened = topQuartileCritical(net);

    campaign::CampaignConfig config;
    config.sample = sample;
    rows.push_back(runVariant(name, "original", net, config));

    config.excludePrimitives = hardened;
    rows.push_back(runVariant(name, "hardened", net, config));

    const harden::FaultTolerantRsn ft = harden::augmentFaultTolerant(net);
    campaign::CampaignConfig ftConfig;
    ftConfig.sample = sample;
    rows.push_back(runVariant(name, "augmented", ft.network, ftConfig));

    campaign::CampaignConfig pairConfig;
    pairConfig.mode = campaign::CampaignMode::Pairs;
    pairConfig.sample = pairSample;
    rows.push_back(runVariant(name, "pairs", net, pairConfig));

    pairConfig.excludePrimitives = hardened;
    rows.push_back(runVariant(name, "pairs-hardened", net, pairConfig));

    campaign::CampaignConfig transientConfig;
    transientConfig.mode = campaign::CampaignMode::Transient;
    transientConfig.sample = sample;
    rows.push_back(runVariant(name, "transient", net, transientConfig));
  }

  TextTable table({"network", "variant", "mode", "scenarios", "accessible",
                   "recovered", "reconfig", "lost", "mismatch", "gap",
                   "retention", "seconds"});
  for (std::size_t c = 3; c < 12; ++c)
    table.setAlign(c, TextTable::Align::Right);
  for (const VariantRow& row : rows) {
    const campaign::CampaignSummary& s = row.summary;
    char seconds[32];
    std::snprintf(seconds, sizeof seconds, "%.2f", row.seconds);
    char retention[32];
    std::snprintf(retention, sizeof retention, "%.4f",
                  row.robustness.retention());
    table.addRow(
        {row.network, row.variant, campaign::campaignModeName(s.mode),
         std::to_string(s.faultsDone),
         std::to_string(s.readAccessible + s.writeAccessible),
         std::to_string(s.readRecovered + s.writeRecovered),
         std::to_string(s.readReconfigured + s.writeReconfigured),
         std::to_string(s.readLost + s.writeLost),
         std::to_string(s.readMismatches + s.writeMismatches),
         std::to_string(s.segmentBreakGapPairs + s.muxStuckGapPairs),
         retention, seconds});
  }
  std::cout << "fault-injection campaign (sample="
            << (sample == 0 ? std::string("exhaustive")
                            : std::to_string(sample))
            << ", pairs=" << pairSample << ")\n"
            << table.render() << '\n';

  std::size_t totalMismatches = 0;
  std::size_t transientLost = 0;
  for (const VariantRow& row : rows) {
    totalMismatches += row.summary.readMismatches + row.summary.writeMismatches;
    if (row.summary.mode == campaign::CampaignMode::Transient)
      transientLost += row.summary.readLost + row.summary.writeLost;
  }
  std::cout << (totalMismatches == 0
                    ? "OK: zero expected-vs-simulated mismatches\n"
                    : "FAIL: expected-vs-simulated mismatches present\n");
  std::cout << (transientLost == 0
                    ? "OK: every transient upset recovered\n"
                    : "FAIL: transient upsets with permanently lost access\n");

  {
    std::ofstream out("BENCH_campaign.json");
    bench::JsonWriter json(out);
    json.beginObject();
    json.kv("bench", "campaign");
    json.kv("sample", static_cast<std::uint64_t>(sample));
    json.kv("pair_sample", static_cast<std::uint64_t>(pairSample));
    json.kv("total_mismatches", static_cast<std::uint64_t>(totalMismatches));
    json.kv("transient_lost", static_cast<std::uint64_t>(transientLost));
    json.key("rows").beginArray();
    for (const VariantRow& row : rows) {
      const campaign::CampaignSummary& s = row.summary;
      const campaign::RobustnessReport& r = row.robustness;
      json.beginObject();
      json.kv("network", row.network);
      json.kv("variant", row.variant);
      json.kv("mode", campaign::campaignModeName(s.mode));
      json.kv("faults", static_cast<std::uint64_t>(s.faultsDone));
      json.kv("instruments", static_cast<std::uint64_t>(s.instruments));
      json.kv("read_accessible", static_cast<std::uint64_t>(s.readAccessible));
      json.kv("read_recovered", static_cast<std::uint64_t>(s.readRecovered));
      json.kv("read_reconfigured",
              static_cast<std::uint64_t>(s.readReconfigured));
      json.kv("read_lost", static_cast<std::uint64_t>(s.readLost));
      json.kv("write_accessible",
              static_cast<std::uint64_t>(s.writeAccessible));
      json.kv("write_recovered", static_cast<std::uint64_t>(s.writeRecovered));
      json.kv("write_reconfigured",
              static_cast<std::uint64_t>(s.writeReconfigured));
      json.kv("write_lost", static_cast<std::uint64_t>(s.writeLost));
      json.kv("mismatches",
              static_cast<std::uint64_t>(s.readMismatches + s.writeMismatches));
      json.kv("gap_pairs", static_cast<std::uint64_t>(s.segmentBreakGapPairs +
                                                      s.muxStuckGapPairs));
      json.kv("oracle_disagreements",
              static_cast<std::uint64_t>(s.oracleDisagreements));
      json.kv("predicted_accessible",
              static_cast<std::uint64_t>(r.predictedAccessible));
      json.kv("observed_accessible",
              static_cast<std::uint64_t>(r.observedAccessible));
      json.kv("compounded", static_cast<std::uint64_t>(r.compounded));
      json.kv("masked", static_cast<std::uint64_t>(r.masked));
      json.kv("reconfigured", static_cast<std::uint64_t>(r.reconfigured));
      json.kv("retention", r.retention());
      json.kv("seconds", row.seconds);
      json.endObject();
    }
    json.endArray();
    bench::writeObsMetrics(json);
    json.endObject();
    out << '\n';
  }
  std::cout << "wrote BENCH_campaign.json\n";
  return (totalMismatches == 0 && transientLost == 0) ? 0 : 1;
}

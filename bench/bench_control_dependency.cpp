// Ablation B: structural vs strict (control-dependency-aware)
// accessibility.
//
// The paper's criticality analysis is structural: it assumes mux address
// values can always be applied.  In a real defect RSN, address registers
// are themselves written through the network, so a fault can also block
// the *configuration* of an otherwise intact path.  The simulator-backed
// strict oracle accounts for that.  This bench measures, per benchmark
// and over the complete single-fault universe, how many (instrument,
// fault) accessibility claims the structural analysis makes that do not
// survive end-to-end simulation — the optimism of the structural model.
#include <iostream>

#include "bench_common.hpp"
#include "rsn/example_networks.hpp"
#include "sim/retarget.hpp"
#include "support/table.hpp"

int main() {
  using namespace rrsn;

  TextTable table({"Design", "#instr", "#faults", "structural obs claims",
                   "confirmed strictly", "structural set claims",
                   "confirmed strictly", "optimism"});
  table.setAlign(0, TextTable::Align::Left);

  for (const char* name :
       {"fig1", "TreeFlat", "TreeUnbalanced", "q12710", "MBIST_1_5_5"}) {
    const rsn::Network net = std::string(name) == "fig1"
                                 ? rsn::makeFig1Network()
                                 : benchgen::buildBenchmark(name);
    const fault::FaultUniverse universe(net);
    const std::size_t n = net.instruments().size();

    std::size_t obsClaims = 0, obsConfirmed = 0;
    std::size_t setClaims = 0, setConfirmed = 0;
    for (const fault::Fault& f : universe.faults()) {
      const sim::AccessReport structural =
          sim::structuralAccessibility(net, &f);
      const sim::AccessReport strict = sim::strictAccessibility(net, &f);
      for (rsn::InstrumentId i = 0; i < n; ++i) {
        if (structural.observable.test(i)) {
          ++obsClaims;
          obsConfirmed += strict.observable.test(i);
        }
        // Sanity: strict accessibility must never exceed structural.
        if (strict.observable.test(i) && !structural.observable.test(i)) {
          std::cerr << "BUG: strict > structural (obs) on " << name << '\n';
          return 1;
        }
        if (structural.settable.test(i)) {
          ++setClaims;
          setConfirmed += strict.settable.test(i);
        }
        if (strict.settable.test(i) && !structural.settable.test(i)) {
          std::cerr << "BUG: strict > structural (set) on " << name << '\n';
          return 1;
        }
      }
    }
    const double optimism =
        100.0 *
        (1.0 - static_cast<double>(obsConfirmed + setConfirmed) /
                   static_cast<double>(obsClaims + setClaims));
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f%%", optimism);
    table.addRow({name, std::to_string(n), std::to_string(universe.size()),
                  withThousands(std::uint64_t{obsClaims}),
                  withThousands(std::uint64_t{obsConfirmed}),
                  withThousands(std::uint64_t{setClaims}),
                  withThousands(std::uint64_t{setConfirmed}), buf});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\nAblation B — structural (paper) vs strict "
               "(simulation-backed) accessibility under single faults\n"
            << table
            << "\n(\"optimism\" = share of structural accessibility claims "
               "that fail once mux-address configuration must itself pass "
               "through the defect RSN; 0% would mean the structural "
               "model is exact)\n";
  return 0;
}

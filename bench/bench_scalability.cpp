// Scalability study (the paper's Sec. VI claim: "efficient hierarchical
// processing enables scalability with the increasing RSN size and
// complexity").
//
// For the MBIST family (113 .. 1,080,305 segments) this bench reports
// the wall-clock time of every pipeline stage separately:
//   network construction, decomposition-tree build + annotation, the
//   complete criticality analysis (all d_j), the fault-dictionary build
//   (batched frontier-sweep engine; gated by RRSN_DICT_MAX_SEGMENTS with
//   a "skipped" JSON marker above the gate), and
//   a fixed-budget SPEA-2 run (50 generations — the EA cost per
//   generation, not convergence, is what scales with the network).
//
// The parallel stages (criticality sweep, dictionary build, SPEA-2
// fitness kernel) are timed twice — once at RRSN_THREADS=1 and once at
// the configured thread count — and the results are checked to be
// byte-identical (the runtime's determinism contract).  Stage timings,
// thread count and speedups are written to BENCH_scalability.json.
#include <fstream>
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "diag/diagnosis.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

namespace {

using namespace rrsn;

/// One parallel stage measured serially and at the pool width.
struct StageTiming {
  double serialSeconds = 0.0;
  double pooledSeconds = 0.0;
  bool identical = false;

  double speedup() const {
    return pooledSeconds > 0.0 ? serialSeconds / pooledSeconds : 0.0;
  }
};

/// Times `run()` at 1 thread and at `threads`, checking `same`.
template <typename RunFn, typename SameFn>
StageTiming measureStage(std::size_t threads, RunFn&& run, SameFn&& same) {
  StageTiming t;
  setThreadCount(1);
  Stopwatch sw;
  const auto serial = run();
  t.serialSeconds = sw.seconds();
  setThreadCount(threads);
  sw.restart();
  const auto pooled = run();
  t.pooledSeconds = sw.seconds();
  t.identical = same(serial, pooled);
  return t;
}

}  // namespace

int main() {
  using namespace rrsn;
  const std::string set = bench::envOr("RRSN_SCALABILITY_SET", "medium");
  const std::size_t threads = threadCount();
  // The batched engine (RRSN_DICT_MODE=batched, the release default)
  // derives each fault's whole syndrome row from a few frontier sweeps,
  // so dictionary builds now reach the 10^5-segment tier in minutes
  // where the per-probe path needed O(|faults|*|instruments|) simulated
  // accesses.  The gate remains for the 10^6-segment runs (and for
  // anyone forcing RRSN_DICT_MODE=probe or =verify, which still pay the
  // per-probe cost); skipped designs carry an explicit "skipped" marker
  // in the JSON so a missing stage is distinguishable from a lost one.
  const std::uint64_t dictMaxSegments =
      bench::envOrU64("RRSN_DICT_MAX_SEGMENTS", 120'000);

  TextTable table({"Design", "#Seg", "#Mux", "tree depth", "build [s]",
                   "tree [s]", "analysis [s]", "analysis x", "dict [s]",
                   "dict x", "EA 50 gen [s]", "EA x"});
  table.setAlign(0, TextTable::Align::Left);

  std::ofstream jsonFile("BENCH_scalability.json");
  bench::JsonWriter json(jsonFile);
  json.beginObject()
      .kv("bench", "scalability")
      .kv("set", set)
      .kv("threads", static_cast<std::uint64_t>(threads))
      .kv("dict_max_segments", dictMaxSegments)
      .key("designs")
      .beginArray();

  bool allIdentical = true;
  for (const benchgen::BenchmarkSpec& spec : benchgen::table1Benchmarks()) {
    if (spec.style != benchgen::Style::Mbist) continue;
    // "small" is the CI smoke tier (seconds, not minutes); "medium" is
    // the committed-artifact default; "all" adds the 10^6-segment runs.
    if (set == "small" && spec.segments > 40'000) continue;
    if (set != "all" && spec.segments > 160'000) continue;

    Stopwatch sw;
    const rsn::Network net = benchgen::buildBenchmark(spec);
    const double tBuild = sw.seconds();

    Rng rng(1);
    const rsn::CriticalitySpec cspec = rsn::randomSpec(net, {}, rng);
    sw.restart();
    sp::DecompositionTree tree = sp::DecompositionTree::build(net);
    tree.annotate(cspec);
    const double tTree = sw.seconds();
    const std::size_t depth = tree.depth();

    const crit::CriticalityAnalyzer analyzer(net, cspec);
    const StageTiming tAnalysis = measureStage(
        threads, [&] { return analyzer.run(); },
        [](const crit::CriticalityResult& a, const crit::CriticalityResult& b) {
          return a.damages() == b.damages();
        });

    std::optional<StageTiming> tDict;
    if (spec.segments <= dictMaxSegments) {
      tDict = measureStage(
          threads, [&] { return diag::FaultDictionary::build(net); },
          [](const diag::FaultDictionary& a, const diag::FaultDictionary& b) {
            if (a.faults().size() != b.faults().size()) return false;
            for (std::size_t k = 0; k < a.faults().size(); ++k)
              if (!(a.syndromeOf(k) == b.syndromeOf(k))) return false;
            return a.faultFreeSyndrome() == b.faultFreeSyndrome();
          });
    }

    const auto analysis = analyzer.run();
    const auto problem = harden::HardeningProblem::assemble(net, analysis);
    moo::EvolutionOptions options;
    options.populationSize = spec.populationSize();
    options.generations = 50;
    options.maxInitOnes = 100'000;
    options.seed = 1;
    const StageTiming tEa = measureStage(
        threads, [&] { return moo::runSpea2(problem.linear, options); },
        [](const moo::RunResult& a, const moo::RunResult& b) {
          return a.archive.members().size() == b.archive.members().size() &&
                 [&] {
                   for (std::size_t i = 0; i < a.archive.members().size(); ++i)
                     if (!(a.archive.members()[i] == b.archive.members()[i]))
                       return false;
                   return true;
                 }();
        });

    allIdentical = allIdentical && tAnalysis.identical && tEa.identical &&
                   (!tDict || tDict->identical);

    const auto fmt = [](double s) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", s);
      return std::string(buf);
    };
    const auto fmtX = [](const StageTiming& t) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2fx%s", t.speedup(),
                    t.identical ? "" : " !!DIFF");
      return std::string(buf);
    };
    table.addRow({spec.name, withThousands(std::uint64_t{spec.segments}),
                  withThousands(std::uint64_t{spec.muxes}),
                  std::to_string(depth), fmt(tBuild), fmt(tTree),
                  fmt(tAnalysis.pooledSeconds), fmtX(tAnalysis),
                  tDict ? fmt(tDict->pooledSeconds) : "-",
                  tDict ? fmtX(*tDict) : "-", fmt(tEa.pooledSeconds),
                  fmtX(tEa)});

    const auto emitStage = [&](const char* name, const StageTiming& t) {
      json.key(name)
          .beginObject()
          .kv("serial_s", t.serialSeconds)
          .kv("pooled_s", t.pooledSeconds)
          .kv("speedup", t.speedup())
          .kv("identical", t.identical)
          .endObject();
    };
    json.beginObject()
        .kv("name", spec.name)
        .kv("segments", std::uint64_t{spec.segments})
        .kv("muxes", std::uint64_t{spec.muxes})
        .kv("tree_depth", static_cast<std::uint64_t>(depth))
        .kv("build_s", tBuild)
        .kv("tree_s", tTree)
        .key("stages")
        .beginObject();
    emitStage("criticality", tAnalysis);
    if (tDict)
      emitStage("dictionary", *tDict);
    else
      json.kv("dictionary", "skipped");
    emitStage("spea2_50gen", tEa);
    json.endObject().endObject();
    std::cout << "." << std::flush;
  }
  json.endArray().kv("all_identical", allIdentical);
  bench::writeObsMetrics(json);
  json.endObject();
  jsonFile << "\n";

  std::cout << "\n\nScalability over the MBIST family (set=" << set
            << "; RRSN_SCALABILITY_SET=small|medium|all — small is the CI "
               "smoke tier, all adds the 10^6-segment networks; "
            << threads << " thread(s), RRSN_THREADS overrides)\n"
            << table
            << "\n(speedup columns compare RRSN_THREADS=1 against the pool "
               "width; results are checked byte-identical between the two "
               "runs — stage timings also land in BENCH_scalability.json)\n";
  return allIdentical ? 0 : 1;
}

// Scalability study (the paper's Sec. VI claim: "efficient hierarchical
// processing enables scalability with the increasing RSN size and
// complexity").
//
// For the MBIST family (113 .. 1,080,305 segments) and the synthetic
// HUGE tier (2^20 segments, benchgen::hugeBenchmarks) this bench
// reports the wall-clock time of every pipeline stage separately:
//   network construction, the one-time FlatNetwork lowering (arena
//   bytes recorded alongside), decomposition-tree build + annotation,
//   the complete criticality analysis (all d_j), the full
//   fault-dictionary build (gated by RRSN_DICT_MAX_SEGMENTS with a
//   "skipped" JSON marker above the gate), an always-on sampled
//   dictionary stage (RRSN_DICT_SAMPLE_ROWS evenly-spaced syndrome rows
//   on the shared flat arena — the stage that proves the dictionary
//   kernel works at 10^6 segments where the full build is quadratic),
//   an always-on campaign-classification stage (RRSN_CAMPAIGN_SAMPLE
//   faults through campaign::expectedAccessibility, classified
//   accessible / degraded / lost), and a fixed-budget SPEA-2 run
//   (50 generations; gated by RRSN_EA_MAX_SEGMENTS).
//
// The parallel stages are timed twice — once at RRSN_THREADS=1 and once
// at the configured thread count — and the results are checked to be
// byte-identical (the runtime's determinism contract).  Stage timings,
// thread count, speedups and peak RSS land in BENCH_scalability.json.
#include <sys/resource.h>

#include <fstream>
#include <iostream>
#include <optional>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "diag/batched.hpp"
#include "diag/diagnosis.hpp"
#include "rsn/flat.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

namespace {

using namespace rrsn;

/// One parallel stage measured serially and at the pool width.
struct StageTiming {
  double serialSeconds = 0.0;
  double pooledSeconds = 0.0;
  bool identical = false;

  double speedup() const {
    return pooledSeconds > 0.0 ? serialSeconds / pooledSeconds : 0.0;
  }
};

/// Times `run()` at 1 thread and at `threads`, checking `same`.
template <typename RunFn, typename SameFn>
StageTiming measureStage(std::size_t threads, RunFn&& run, SameFn&& same) {
  StageTiming t;
  setThreadCount(1);
  Stopwatch sw;
  const auto serial = run();
  t.serialSeconds = sw.seconds();
  setThreadCount(threads);
  sw.restart();
  const auto pooled = run();
  t.pooledSeconds = sw.seconds();
  t.identical = same(serial, pooled);
  return t;
}

/// High-water resident set size of this process, in MiB (ru_maxrss is
/// KiB on Linux).  Monotone: per-design values are max-so-far.
double peakRssMb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/// `count` evenly-spaced indices over [0, universe).
std::vector<std::size_t> evenSample(std::size_t universe, std::size_t count) {
  count = std::min(std::max<std::size_t>(count, 1), universe);
  std::vector<std::size_t> idx(count);
  for (std::size_t k = 0; k < count; ++k)
    idx[k] = count > 1 ? k * (universe - 1) / (count - 1) : universe / 2;
  return idx;
}

/// Per-fault classification of a campaign expectation.
enum class Verdict : std::uint8_t { Accessible, Degraded, Lost };

Verdict classify(const campaign::Expectation& e, std::size_t instruments) {
  const std::size_t live = e.observable.count() + e.settable.count();
  if (live == 2 * instruments) return Verdict::Accessible;
  if (live == 0) return Verdict::Lost;
  return Verdict::Degraded;
}

}  // namespace

int main() {
  using namespace rrsn;
  const std::string set = bench::envOr("RRSN_SCALABILITY_SET", "medium");
  const std::size_t threads = threadCount();
  // The batched engine (RRSN_DICT_MODE=batched, the release default)
  // derives each fault's whole syndrome row from a few frontier sweeps,
  // so dictionary builds now reach the 10^5-segment tier in minutes
  // where the per-probe path needed O(|faults|*|instruments|) simulated
  // accesses.  The gate remains for the 10^6-segment runs — the full
  // build is still O(|faults| * |vertices|) — which is why the sampled
  // dictionary stage below runs unconditionally: it proves the kernel
  // at any size without paying the quadratic sweep.  Skipped stages
  // carry an explicit "skipped" marker in the JSON so a missing stage
  // is distinguishable from a lost one.
  const std::uint64_t dictMaxSegments =
      bench::envOrU64("RRSN_DICT_MAX_SEGMENTS", 120'000);
  const std::uint64_t eaMaxSegments =
      bench::envOrU64("RRSN_EA_MAX_SEGMENTS", 200'000);
  const std::size_t dictSampleRows = static_cast<std::size_t>(
      bench::envOrU64("RRSN_DICT_SAMPLE_ROWS", 32));
  const std::size_t campaignSample = static_cast<std::size_t>(
      bench::envOrU64("RRSN_CAMPAIGN_SAMPLE", 64));

  // Tier selection.  "small" is the CI smoke tier (seconds); "medium"
  // is the committed-artifact default (<= 160k segments); "all" adds
  // the 10^6-segment MBIST and HUGE networks; "huge" runs only the
  // synthetic HUGE tier (RRSN_HUGE_SEGMENTS rescales it, e.g. for a
  // peak-RSS smoke on CI hardware).
  std::vector<benchgen::BenchmarkSpec> specs;
  if (set != "huge") {
    for (const benchgen::BenchmarkSpec& spec : benchgen::table1Benchmarks()) {
      if (spec.style != benchgen::Style::Mbist) continue;
      if (set == "small" && spec.segments > 40'000) continue;
      if (set != "all" && spec.segments > 160'000) continue;
      specs.push_back(spec);
    }
  }
  if (set == "all" || set == "huge") {
    const std::uint64_t hugeSegments =
        bench::envOrU64("RRSN_HUGE_SEGMENTS", 0);
    for (benchgen::BenchmarkSpec spec : benchgen::hugeBenchmarks()) {
      if (hugeSegments != 0) {
        // Rescale proportionally; makeHuge hits any (S, M) target
        // exactly, so the spec stays self-consistent.
        spec.muxes = std::max<std::size_t>(
            3, spec.muxes * static_cast<std::size_t>(hugeSegments) /
                   spec.segments);
        spec.segments = static_cast<std::size_t>(hugeSegments);
      }
      specs.push_back(std::move(spec));
    }
  }

  TextTable table({"Design", "#Seg", "#Mux", "build [s]", "lower [s]",
                   "flat [MB]", "tree [s]", "analysis [s]", "analysis x",
                   "dict [s]", "sampled [s]", "campaign [s]", "EA [s]",
                   "rss [MB]"});
  table.setAlign(0, TextTable::Align::Left);

  std::ofstream jsonFile("BENCH_scalability.json");
  bench::JsonWriter json(jsonFile);
  json.beginObject()
      .kv("bench", "scalability")
      .kv("set", set)
      .kv("threads", static_cast<std::uint64_t>(threads))
      .kv("dict_max_segments", dictMaxSegments)
      .kv("ea_max_segments", eaMaxSegments)
      .kv("dict_sample_rows", static_cast<std::uint64_t>(dictSampleRows))
      .kv("campaign_sample", static_cast<std::uint64_t>(campaignSample))
      .key("designs")
      .beginArray();

  bool allIdentical = true;
  for (const benchgen::BenchmarkSpec& spec : specs) {
    Stopwatch sw;
    const rsn::Network net = benchgen::buildBenchmark(spec);
    const double tBuild = sw.seconds();

    Rng rng(1);
    const rsn::CriticalitySpec cspec = rsn::randomSpec(net, {}, rng);

    // The one-time lowering every flat consumer below shares.
    sw.restart();
    const std::shared_ptr<const rsn::FlatNetwork> flat =
        rsn::FlatNetwork::lower(net, &cspec);
    const double tLower = sw.seconds();
    const std::uint64_t flatBytes = flat->buffer().size();

    sw.restart();
    sp::DecompositionTree tree = sp::DecompositionTree::build(net);
    tree.annotate(cspec);
    const double tTree = sw.seconds();
    const std::size_t depth = tree.depth();

    const crit::CriticalityAnalyzer analyzer(net, cspec);
    const StageTiming tAnalysis = measureStage(
        threads, [&] { return analyzer.run(); },
        [](const crit::CriticalityResult& a, const crit::CriticalityResult& b) {
          return a.damages() == b.damages();
        });

    std::optional<StageTiming> tDict;
    if (spec.segments <= dictMaxSegments) {
      tDict = measureStage(
          threads, [&] { return diag::FaultDictionary::build(net); },
          [](const diag::FaultDictionary& a, const diag::FaultDictionary& b) {
            if (a.faults().size() != b.faults().size()) return false;
            for (std::size_t k = 0; k < a.faults().size(); ++k)
              if (!(a.syndromeOf(k) == b.syndromeOf(k))) return false;
            return a.faultFreeSyndrome() == b.faultFreeSyndrome();
          });
    }

    // Sampled syndrome rows on the shared arena — the dictionary kernel
    // at full network size, decoupled from the quadratic full build.
    const fault::FaultUniverse universe(net);
    const std::vector<std::size_t> dictSample =
        evenSample(universe.size(), dictSampleRows);
    const StageTiming tSampled = measureStage(
        threads,
        [&] {
          const diag::BatchedSyndromeEngine engine(flat);
          std::vector<diag::Syndrome> rows(dictSample.size());
          parallelForChunks(
              dictSample.size(),
              [&](std::size_t begin, std::size_t end, std::size_t worker) {
                for (std::size_t k = begin; k < end; ++k)
                  rows[k] =
                      engine.row(&universe.faults()[dictSample[k]], worker);
              });
          return rows;
        },
        [](const std::vector<diag::Syndrome>& a,
           const std::vector<diag::Syndrome>& b) {
          if (a.size() != b.size()) return false;
          for (std::size_t k = 0; k < a.size(); ++k)
            if (!(a[k] == b[k])) return false;
          return true;
        });

    // Campaign classification over a fault sample: each scenario's
    // control-aware expected accessibility, folded to
    // accessible/degraded/lost (the campaign engine's oracle, on the
    // same shared arena).
    const std::size_t instruments = net.instruments().size();
    const std::vector<std::size_t> campSample =
        evenSample(universe.size(), campaignSample);
    const StageTiming tCampaign = measureStage(
        threads,
        [&] {
          const diag::BatchedSyndromeEngine engine(flat);
          std::vector<std::uint8_t> verdicts(campSample.size());
          parallelForChunks(
              campSample.size(),
              [&](std::size_t begin, std::size_t end, std::size_t worker) {
                for (std::size_t k = begin; k < end; ++k) {
                  const campaign::Expectation e =
                      campaign::expectedAccessibility(
                          engine, instruments,
                          universe.faults()[campSample[k]], worker);
                  verdicts[k] =
                      static_cast<std::uint8_t>(classify(e, instruments));
                }
              });
          return verdicts;
        },
        [](const std::vector<std::uint8_t>& a,
           const std::vector<std::uint8_t>& b) { return a == b; });
    // Rerun once (pooled state is current) to report the class counts.
    std::uint64_t nAccessible = 0, nDegraded = 0, nLost = 0;
    {
      const diag::BatchedSyndromeEngine engine(flat);
      for (const std::size_t f : campSample) {
        switch (classify(campaign::expectedAccessibility(
                             engine, instruments, universe.faults()[f], 0),
                         instruments)) {
          case Verdict::Accessible: nAccessible += 1; break;
          case Verdict::Degraded: nDegraded += 1; break;
          case Verdict::Lost: nLost += 1; break;
        }
      }
    }

    std::optional<StageTiming> tEa;
    if (spec.segments <= eaMaxSegments) {
      const auto analysis = analyzer.run();
      const auto problem =
          harden::HardeningProblem::assemble(net, *flat, analysis);
      moo::EvolutionOptions options;
      options.populationSize = spec.populationSize();
      options.generations = 50;
      options.maxInitOnes = 100'000;
      options.seed = 1;
      tEa = measureStage(
          threads, [&] { return moo::runSpea2(problem.linear, options); },
          [](const moo::RunResult& a, const moo::RunResult& b) {
            return a.archive.members().size() == b.archive.members().size() &&
                   [&] {
                     for (std::size_t i = 0; i < a.archive.members().size();
                          ++i)
                       if (!(a.archive.members()[i] == b.archive.members()[i]))
                         return false;
                     return true;
                   }();
          });
    }

    const double rssMb = peakRssMb();
    allIdentical = allIdentical && tAnalysis.identical &&
                   tSampled.identical && tCampaign.identical &&
                   (!tDict || tDict->identical) && (!tEa || tEa->identical);

    const auto fmt = [](double s) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", s);
      return std::string(buf);
    };
    const auto fmtX = [](const StageTiming& t) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.2fx%s", t.speedup(),
                    t.identical ? "" : " !!DIFF");
      return std::string(buf);
    };
    table.addRow({spec.name, withThousands(std::uint64_t{spec.segments}),
                  withThousands(std::uint64_t{spec.muxes}), fmt(tBuild),
                  fmt(tLower),
                  fmt(static_cast<double>(flatBytes) / (1024.0 * 1024.0)),
                  fmt(tTree), fmt(tAnalysis.pooledSeconds), fmtX(tAnalysis),
                  tDict ? fmt(tDict->pooledSeconds) : "-",
                  fmt(tSampled.pooledSeconds), fmt(tCampaign.pooledSeconds),
                  tEa ? fmt(tEa->pooledSeconds) : "-", fmt(rssMb)});

    const auto emitStage = [&](const char* name, const StageTiming& t) {
      json.key(name)
          .beginObject()
          .kv("serial_s", t.serialSeconds)
          .kv("pooled_s", t.pooledSeconds)
          .kv("speedup", t.speedup())
          .kv("identical", t.identical)
          .endObject();
    };
    json.beginObject()
        .kv("name", spec.name)
        .kv("segments", std::uint64_t{spec.segments})
        .kv("muxes", std::uint64_t{spec.muxes})
        .kv("tree_depth", static_cast<std::uint64_t>(depth))
        .kv("build_s", tBuild)
        .kv("lower_s", tLower)
        .kv("flat_bytes", flatBytes)
        .kv("tree_s", tTree)
        .key("stages")
        .beginObject();
    emitStage("criticality", tAnalysis);
    if (tDict)
      emitStage("dictionary", *tDict);
    else
      json.kv("dictionary", "skipped");
    json.key("dictionary_sampled")
        .beginObject()
        .kv("rows", static_cast<std::uint64_t>(dictSample.size()))
        .kv("serial_s", tSampled.serialSeconds)
        .kv("pooled_s", tSampled.pooledSeconds)
        .kv("speedup", tSampled.speedup())
        .kv("identical", tSampled.identical)
        .endObject();
    json.key("campaign_classification")
        .beginObject()
        .kv("sampled", static_cast<std::uint64_t>(campSample.size()))
        .kv("accessible", nAccessible)
        .kv("degraded", nDegraded)
        .kv("lost", nLost)
        .kv("serial_s", tCampaign.serialSeconds)
        .kv("pooled_s", tCampaign.pooledSeconds)
        .kv("speedup", tCampaign.speedup())
        .kv("identical", tCampaign.identical)
        .endObject();
    if (tEa)
      emitStage("spea2_50gen", *tEa);
    else
      json.kv("spea2_50gen", "skipped");
    json.endObject().kv("peak_rss_mb", rssMb).endObject();
    std::cout << "." << std::flush;
  }
  json.endArray()
      .kv("all_identical", allIdentical)
      .kv("peak_rss_mb", peakRssMb());
  bench::writeObsMetrics(json);
  json.endObject();
  jsonFile << "\n";

  std::cout << "\n\nScalability over the MBIST + HUGE families (set=" << set
            << "; RRSN_SCALABILITY_SET=small|medium|all|huge — small is the "
               "CI smoke tier, all adds the 10^6-segment networks, huge runs "
               "only the synthetic tier; "
            << threads << " thread(s), RRSN_THREADS overrides)\n"
            << table
            << "\n(speedup columns compare RRSN_THREADS=1 against the pool "
               "width; results are checked byte-identical between the two "
               "runs.  'sampled' is " << dictSampleRows
            << " dictionary rows and 'campaign' " << campaignSample
            << " classified faults on the shared flat arena — both run at "
               "every size.  Full dictionary gated at "
            << dictMaxSegments << " segments, SPEA-2 at " << eaMaxSegments
            << "; gated stages carry \"skipped\" JSON markers.  Stage "
               "timings and peak RSS land in BENCH_scalability.json)\n";
  return allIdentical ? 0 : 1;
}

// Scalability study (the paper's Sec. VI claim: "efficient hierarchical
// processing enables scalability with the increasing RSN size and
// complexity").
//
// For the MBIST family (113 .. 1,080,305 segments) this bench reports
// the wall-clock time of every pipeline stage separately:
//   network construction, decomposition-tree build + annotation, the
//   complete criticality analysis (all d_j), and a fixed-budget SPEA-2
//   run (50 generations — the EA cost per generation, not convergence,
//   is what scales with the network).
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace rrsn;
  const std::string set = bench::envOr("RRSN_SCALABILITY_SET", "medium");

  TextTable table({"Design", "#Seg", "#Mux", "tree depth", "build [s]",
                   "tree [s]", "analysis [s]", "EA 50 gen [s]",
                   "analysis us/primitive"});
  table.setAlign(0, TextTable::Align::Left);

  for (const benchgen::BenchmarkSpec& spec : benchgen::table1Benchmarks()) {
    if (spec.style != benchgen::Style::Mbist) continue;
    if (set != "all" && spec.segments > 160'000) continue;

    Stopwatch sw;
    const rsn::Network net = benchgen::buildBenchmark(spec);
    const double tBuild = sw.seconds();

    Rng rng(1);
    const rsn::CriticalitySpec cspec = rsn::randomSpec(net, {}, rng);
    sw.restart();
    sp::DecompositionTree tree = sp::DecompositionTree::build(net);
    tree.annotate(cspec);
    const double tTree = sw.seconds();
    const std::size_t depth = tree.depth();

    sw.restart();
    const auto analysis = crit::CriticalityAnalyzer(net, cspec).run();
    const double tAnalysis = sw.seconds();

    const auto problem = harden::HardeningProblem::assemble(net, analysis);
    moo::EvolutionOptions options;
    options.populationSize = spec.populationSize();
    options.generations = 50;
    options.maxInitOnes = 100'000;
    options.seed = 1;
    sw.restart();
    (void)moo::runSpea2(problem.linear, options);
    const double tEa = sw.seconds();

    const auto fmt = [](double s) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.3f", s);
      return std::string(buf);
    };
    char perPrim[32];
    std::snprintf(perPrim, sizeof perPrim, "%.3f",
                  1e6 * tAnalysis / static_cast<double>(net.primitiveCount()));
    table.addRow({spec.name, withThousands(std::uint64_t{spec.segments}),
                  withThousands(std::uint64_t{spec.muxes}),
                  std::to_string(depth), fmt(tBuild), fmt(tTree),
                  fmt(tAnalysis), fmt(tEa), perPrim});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\nScalability over the MBIST family (set="
            << set << "; RRSN_SCALABILITY_SET=all adds the 10^6-segment "
                      "networks)\n"
            << table
            << "\n(the per-primitive analysis cost should stay roughly "
               "constant — the criticality analysis is O(N log N) thanks "
               "to the balanced decomposition tree)\n";
  return 0;
}

// Static certification study.
//
// The certifier answers the same question as the fault dictionary —
// which instruments survive which single faults — but by dataflow proof
// instead of exhaustive syndrome simulation.  This bench measures that
// trade on the paper networks and an MBIST-class design: wall-clock of
// a full-universe certification vs. a full dictionary build, how much
// of the universe the O(1) fast tier absorbs, and the verdict mix.  A
// row-parity gate replays certifier verdicts through the batched
// syndrome oracle (full universe on small nets, strided on large ones)
// and fails the bench on any divergence, so the numbers below are only
// ever printed for a certifier that agrees with simulation.  The
// hardened rows show the certifier consuming a hardening plan: excluded
// primitives leave the fault universe and the vulnerable count drops.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "diag/batched.hpp"
#include "diag/diagnosis.hpp"
#include "fault/fault.hpp"
#include "rsn/example_networks.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "verify/certifier.hpp"

namespace {

struct DesignRow {
  std::string name;
  rrsn::verify::CertifySummary summary;
  double certifyMs = 0;
  double dictMs = 0;
  std::size_t parityChecked = 0;
  std::size_t hardenedUniverse = 0;    // 0 when no hardened variant ran
  std::uint64_t hardenedVulnRead = 0;
};

/// Replays every `stride`-th certifier row through the syndrome oracle.
/// Returns the number of rows checked; any divergence aborts the bench.
std::size_t parityGate(const rrsn::rsn::Network& net,
                       const rrsn::verify::CertificationResult& result,
                       std::size_t stride) {
  using namespace rrsn;
  const diag::BatchedSyndromeEngine oracle(net);
  std::size_t checked = 0;
  for (std::size_t fi = 0; fi < result.universe.size(); fi += stride) {
    const fault::Fault& f = result.universe[fi];
    const campaign::Expectation expect = campaign::expectedAccessibility(
        oracle, result.instruments, f, /*worker=*/0);
    for (std::size_t i = 0; i < result.instruments; ++i) {
      const bool readOk =
          (result.read(fi, i) == verify::Verdict::Proven) ==
          expect.observable.test(i);
      const bool writeOk =
          (result.write(fi, i) == verify::Verdict::Proven) ==
          expect.settable.test(i);
      if (!readOk || !writeOk) {
        std::cerr << "\nPARITY FAILURE: " << fault::describe(net, f)
                  << " / instrument " << i << " ("
                  << (readOk ? "write" : "read") << " verdict diverges from "
                  << "the syndrome oracle)\n";
        std::exit(1);
      }
    }
    ++checked;
  }
  return checked;
}

}  // namespace

int main() {
  using namespace rrsn;
  const std::uint64_t seed = bench::envOrU64("RRSN_SEED", 2022);
  // Full-universe parity below this fault count, strided above it.
  const std::uint64_t parityCap = bench::envOrU64("RRSN_PARITY_CAP", 2000);

  TextTable table({"Design", "faults", "instr", "certify", "dict build",
                   "fast rows", "P/V read", "parity"});
  table.setAlign(0, TextTable::Align::Left);

  std::vector<DesignRow> rows;
  for (const char* name :
       {"fig1", "TreeFlat", "TreeUnbalanced", "q12710", "MBIST_1_5_5",
        "MBIST_1_5_20"}) {
    const rsn::Network net = std::string(name) == "fig1"
                                 ? rsn::makeFig1Network()
                                 : benchgen::buildBenchmark(name);

    DesignRow row;
    row.name = name;

    const verify::Certifier certifier(net);
    verify::CertifyOptions options;
    options.crossCheck = false;  // the parity gate below is the check
    Stopwatch certifyWatch;
    const verify::CertificationResult result = certifier.run(options);
    row.certifyMs = certifyWatch.millis();
    row.summary = result.summary();

    Stopwatch dictWatch;
    const diag::FaultDictionary dict = diag::FaultDictionary::build(net);
    row.dictMs = dictWatch.millis();
    (void)dict;

    const std::size_t stride =
        result.universe.size() <= parityCap
            ? 1
            : (result.universe.size() + parityCap - 1) / parityCap;
    row.parityChecked = parityGate(net, result, stride);

    // Hardened variant: feed the min-cost @ damage<=10% plan back into
    // the certifier as an exclusion set.
    Rng rng(seed);
    const auto cspec = rsn::randomSpec(net, {}, rng);
    const auto analysis = crit::CriticalityAnalyzer(net, cspec).run();
    const auto problem = harden::HardeningProblem::assemble(net, analysis);
    const auto knee = moo::greedyMinCost(
        problem.linear, static_cast<std::uint64_t>(
                            0.10 * static_cast<double>(problem.maxDamage)));
    if (knee) {
      verify::CertifyOptions hardenedOptions;
      hardenedOptions.crossCheck = false;
      hardenedOptions.excludePrimitives = DynamicBitset(net.primitiveCount());
      for (std::uint32_t idx : knee->genome.indices()) {
        hardenedOptions.excludePrimitives.set(idx);
      }
      const verify::CertificationResult hardened =
          certifier.run(hardenedOptions);
      row.hardenedUniverse = hardened.universe.size();
      row.hardenedVulnRead = hardened.summary().vulnerableRead;
    }

    char certifyBuf[32], dictBuf[32];
    std::snprintf(certifyBuf, sizeof certifyBuf, "%.1f ms", row.certifyMs);
    std::snprintf(dictBuf, sizeof dictBuf, "%.1f ms", row.dictMs);
    table.addRow(
        {row.name, std::to_string(row.summary.faults),
         std::to_string(row.summary.instruments), certifyBuf, dictBuf,
         std::to_string(row.summary.fastRows),
         std::to_string(row.summary.provenRead) + "/" +
             std::to_string(row.summary.vulnerableRead),
         std::to_string(row.parityChecked) + " rows"});
    rows.push_back(row);
    std::cout << "." << std::flush;
  }

  std::cout << "\n\nStatic certification vs. dictionary simulation\n"
            << table
            << "\n(certify = full single-fault universe, both directions; "
               "'fast rows' is the share decided by the O(1) dominator/"
               "stuck-mask tier without running the fixpoint; the parity "
               "column counts rows replayed through the syndrome oracle — "
               "a divergence fails this bench, so printed numbers always "
               "agree with simulation.  Unknown cells: "
            << rows.back().summary.unknownCells() << " on "
            << rows.back().name << ")\n";

  {
    std::ofstream out("BENCH_certify.json");
    bench::JsonWriter json(out);
    json.beginObject()
        .kv("bench", "certify")
        .kv("threads", static_cast<std::uint64_t>(threadCount()))
        .key("designs")
        .beginArray();
    for (const DesignRow& row : rows) {
      json.beginObject()
          .kv("name", row.name)
          .kv("faults", static_cast<std::uint64_t>(row.summary.faults))
          .kv("instruments",
              static_cast<std::uint64_t>(row.summary.instruments))
          .kv("certify_ms", row.certifyMs)
          .kv("dict_build_ms", row.dictMs)
          .kv("fast_rows", static_cast<std::uint64_t>(row.summary.fastRows))
          .kv("fixpoint_rows",
              static_cast<std::uint64_t>(row.summary.fixpointRows))
          .kv("proven_read", row.summary.provenRead)
          .kv("vulnerable_read", row.summary.vulnerableRead)
          .kv("proven_write", row.summary.provenWrite)
          .kv("vulnerable_write", row.summary.vulnerableWrite)
          .kv("unknown_cells", row.summary.unknownCells())
          .kv("parity_rows_checked",
              static_cast<std::uint64_t>(row.parityChecked))
          .kv("hardened_universe",
              static_cast<std::uint64_t>(row.hardenedUniverse))
          .kv("hardened_vulnerable_read", row.hardenedVulnRead)
          .endObject();
    }
    json.endArray().endObject();
    out << "\n";
  }
  std::cout << "wrote BENCH_certify.json\n";
  return 0;
}

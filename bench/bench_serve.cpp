// bench_serve — load generator for the rrsn_serve analysis daemon.
//
// Drives N concurrent clients x M mixed requests (analyze / lint /
// diagnose / campaign / harden over a small corpus of Table-I networks)
// against a Server and reports per-endpoint p50/p99 latency plus the
// artifact-cache hit rate.  Two transports:
//
//   * in-process (default): each client gets a socketpair whose far end
//     is pumped by Server::serveStream on its own thread — the full
//     wire protocol without needing an external daemon;
//   * --connect PATH: each client dials an already-running rrsn_serve
//     Unix socket (the CI smoke job uses this).
//
// The cold phase issues the first-ever analyze per corpus design; the
// warm phase repeats the mix against the populated cache.  The headline
// number is warm_speedup = cold analyze p50 / warm analyze p50 — the
// daemon's reason to exist.  --smoke shrinks the load and turns the
// checks (no error responses, warm_speedup > 1, fingerprint match,
// clean shutdown) into the exit code.
//
// Artifacts: text summary on stdout, BENCH_serve.json next to it.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "rsn/flat.hpp"
#include "rsn/netlist_io.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"
#include "support/io.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"

namespace {

using namespace rrsn;

struct Options {
  std::size_t clients = 4;
  std::size_t requests = 50;  ///< per client, warm phase
  bool smoke = false;
  std::string connectPath;  ///< empty: in-process transport
  std::string out = "BENCH_serve.json";
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  auto next = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) throw UsageError(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--clients") {
      opt.clients = static_cast<std::size_t>(
          parseUintBounded(next(i, "--clients"), "--clients", 1, 64));
    } else if (arg == "--requests") {
      opt.requests = static_cast<std::size_t>(
          parseUintBounded(next(i, "--requests"), "--requests", 1, 100000));
    } else if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--connect") {
      opt.connectPath = next(i, "--connect");
    } else if (arg == "--out") {
      opt.out = next(i, "--out");
    } else {
      throw UsageError("unknown option: " + arg);
    }
  }
  if (opt.smoke) {
    opt.clients = std::min<std::size_t>(opt.clients, 2);
    opt.requests = std::min<std::size_t>(opt.requests, 10);
  }
  return opt;
}

/// One protocol client: a connected stream fd plus, for the in-process
/// transport, the thread pumping the server side of its socketpair.
struct Client {
  int fd = -1;
  std::thread pump;

  ~Client() {
    if (fd >= 0) ::close(fd);
    if (pump.joinable()) pump.join();
  }
};

void connectInProcess(serve::Server& server, Client& c) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw IoError(std::string("socketpair() failed: ") + std::strerror(errno));
  }
  c.fd = sv[0];
  c.pump = std::thread([&server, fd = sv[1]] {
    (void)server.serveStream(fd, fd);
    ::close(fd);
  });
}

void connectSocket(const std::string& path, Client& c) {
  c.fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (c.fd < 0) {
    throw IoError(std::string("socket() failed: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw UsageError("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(c.fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    throw IoError("cannot connect to " + path + ": " + std::strerror(errno));
  }
}

json::Value rpc(int fd, const json::Value& request) {
  Status st = serve::writeFrame(fd, json::serialize(request));
  if (!st.ok()) throw IoError("request write failed: " + st.toString());
  std::string payload;
  bool eof = false;
  st = serve::readFrame(fd, payload, eof);
  if (!st.ok()) throw IoError("response read failed: " + st.toString());
  if (eof) throw IoError("server closed the stream mid-session");
  return json::parse(payload);
}

json::Value makeRequest(std::uint64_t id, const std::string& method,
                        const std::string& netlist, json::Object extra = {}) {
  json::Object params(std::move(extra));
  if (!netlist.empty()) params["netlist"] = json::Value(netlist);
  json::Object req;
  req["id"] = json::Value(id);
  req["method"] = json::Value(method);
  req["params"] = json::Value(std::move(params));
  return json::Value(std::move(req));
}

/// The warm-phase mix: mostly analyze (the cache's showcase), spiced
/// with every other endpoint.  Deterministic in the request index.
std::pair<std::string, json::Object> mixedCall(std::size_t i) {
  switch (i % 6) {
    case 1:
      return {"lint", {}};
    case 2:
      return {"diagnose", {}};
    case 3: {
      json::Object p;
      p["sample"] = json::Value(std::uint64_t{8});
      return {"campaign", std::move(p)};
    }
    case 5: {
      json::Object p;
      p["generations"] = json::Value(std::uint64_t{4});
      p["population"] = json::Value(std::uint64_t{8});
      return {"harden", std::move(p)};
    }
    default:
      return {"analyze", {}};
  }
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * double(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct MethodStats {
  std::vector<double> latenciesMs;
  std::size_t errors = 0;
};

}  // namespace

int main(int argc, char** argv) {
  io::ignoreSigpipe();
  try {
    const Options opt = parseArgs(argc, argv);
    obs::enable();

    // Corpus: small-to-medium Table-I designs so the mix exercises real
    // analysis work while a full run stays interactive on one core.
    const std::vector<std::string> corpusNames = {"TreeFlat", "TreeBalanced",
                                                  "q12710", "MBIST_2_5_5"};
    std::vector<std::string> corpus;
    std::vector<std::uint64_t> flatFingerprints;
    for (const std::string& name : corpusNames) {
      const rsn::Network net = benchgen::buildBenchmark(name);
      corpus.push_back(rsn::netlistToString(net));
      // Reference lowering from the exact bytes the daemon will see
      // (the text round trip is what the request carries).
      flatFingerprints.push_back(
          rsn::FlatNetwork::lower(rsn::parseNetlistString(corpus.back()))
              ->fingerprint());
    }

    serve::Server server{serve::ServerOptions{}};
    const bool inProcess = opt.connectPath.empty();
    auto connect = [&](Client& c) {
      if (inProcess) {
        connectInProcess(server, c);
      } else {
        connectSocket(opt.connectPath, c);
      }
    };

    // ---------------------------------------------------- cold phase
    // First-ever analyze per design: parse + lower + criticality all
    // count against these latencies.
    std::vector<double> coldAnalyzeMs;
    bool fingerprintMatch = true;
    {
      Client c;
      connect(c);
      for (std::size_t i = 0; i < corpus.size(); ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        const json::Value resp = rpc(c.fd, makeRequest(i, "analyze", corpus[i]));
        const std::chrono::duration<double, std::milli> dt =
            std::chrono::steady_clock::now() - t0;
        coldAnalyzeMs.push_back(dt.count());
        if (!resp.at("ok").asBool()) throw Error("cold analyze failed");
        // The daemon's flat view (possibly mmap-adopted from its disk
        // tier) must be byte-identical to an in-process lowering.
        const std::uint64_t served = static_cast<std::uint64_t>(
            resp.at("result").at("flat_fingerprint").asInt());
        fingerprintMatch = fingerprintMatch && served == flatFingerprints[i];
      }
    }

    // ---------------------------------------------------- warm phase
    std::mutex mu;
    std::map<std::string, MethodStats> byMethod;
    std::vector<std::thread> clients;
    std::vector<std::unique_ptr<Client>> conns;
    for (std::size_t c = 0; c < opt.clients; ++c) {
      conns.push_back(std::make_unique<Client>());
      connect(*conns.back());
    }
    for (std::size_t c = 0; c < opt.clients; ++c) {
      clients.emplace_back([&, c] {
        std::map<std::string, MethodStats> local;
        for (std::size_t i = 0; i < opt.requests; ++i) {
          const auto [method, extra] = mixedCall(c * opt.requests + i);
          const std::string& netlist = corpus[(c + i) % corpus.size()];
          const auto t0 = std::chrono::steady_clock::now();
          const json::Value resp =
              rpc(conns[c]->fd,
                  makeRequest(1000 + c * opt.requests + i, method, netlist,
                              json::Object(extra)));
          const std::chrono::duration<double, std::milli> dt =
              std::chrono::steady_clock::now() - t0;
          MethodStats& ms = local[method];
          ms.latenciesMs.push_back(dt.count());
          if (!resp.at("ok").asBool()) ++ms.errors;
        }
        std::lock_guard<std::mutex> lock(mu);
        for (auto& [method, ms] : local) {
          MethodStats& dst = byMethod[method];
          dst.latenciesMs.insert(dst.latenciesMs.end(),
                                 ms.latenciesMs.begin(),
                                 ms.latenciesMs.end());
          dst.errors += ms.errors;
        }
      });
    }
    for (auto& t : clients) t.join();

    // -------------------------------------------- stats + shutdown
    json::Value statsResp;
    bool cleanShutdown = true;
    {
      Client c;
      connect(c);
      statsResp = rpc(c.fd, makeRequest(9000, "stats", ""));
      if (!inProcess && opt.smoke) {
        const json::Value bye = rpc(c.fd, makeRequest(9001, "shutdown", ""));
        cleanShutdown = bye.at("ok").asBool();
      }
    }
    conns.clear();  // closes fds; in-process pump threads drain on EOF
    if (inProcess) server.requestStop();

    const json::Value& cacheStats = statsResp.at("result").at("cache");
    const double hitRate = cacheStats.at("hit_rate").asDouble();
    const double coldP50 = percentile(coldAnalyzeMs, 0.5);
    const double warmP50 = percentile(byMethod["analyze"].latenciesMs, 0.5);
    const double warmSpeedup = warmP50 > 0.0 ? coldP50 / warmP50 : 0.0;
    std::size_t totalErrors = 0;
    for (const auto& [method, ms] : byMethod) totalErrors += ms.errors;

    std::cout << "bench_serve: " << opt.clients << " clients x "
              << opt.requests << " requests ("
              << (inProcess ? "in-process" : opt.connectPath) << ")\n"
              << "  cold analyze p50: " << coldP50 << " ms\n"
              << "  warm analyze p50: " << warmP50 << " ms  (speedup "
              << warmSpeedup << "x)\n"
              << "  cache hit rate:   " << hitRate << '\n'
              << "  error responses:  " << totalErrors << '\n'
              << "  flat fingerprint match: "
              << (fingerprintMatch ? "yes" : "NO") << '\n';

    {
      std::ofstream out(opt.out);
      bench::JsonWriter json(out);
      json.beginObject();
      json.kv("bench", "serve");
      json.kv("clients", static_cast<std::uint64_t>(opt.clients));
      json.kv("requests_per_client", static_cast<std::uint64_t>(opt.requests));
      json.kv("transport", inProcess ? "in-process" : "socket");
      json.key("corpus").beginArray();
      for (const std::string& name : corpusNames) json.value(name);
      json.endArray();
      json.kv("cold_analyze_p50_ms", coldP50);
      json.kv("cold_analyze_p99_ms", percentile(coldAnalyzeMs, 0.99));
      json.kv("warm_speedup", warmSpeedup);
      json.kv("cache_hit_rate", hitRate);
      json.kv("cache_hits", cacheStats.at("hits").asUnsigned());
      json.kv("cache_misses", cacheStats.at("misses").asUnsigned());
      json.kv("cache_evictions", cacheStats.at("evictions").asUnsigned());
      json.kv("flat_fingerprint_match", fingerprintMatch);
      json.kv("error_responses", static_cast<std::uint64_t>(totalErrors));
      json.key("endpoints").beginArray();
      for (const auto& [method, ms] : byMethod) {
        json.beginObject();
        json.kv("method", method);
        json.kv("count", static_cast<std::uint64_t>(ms.latenciesMs.size()));
        json.kv("p50_ms", percentile(ms.latenciesMs, 0.5));
        json.kv("p99_ms", percentile(ms.latenciesMs, 0.99));
        json.kv("errors", static_cast<std::uint64_t>(ms.errors));
        json.endObject();
      }
      json.endArray();
      json.endObject();
      out << '\n';
    }
    std::cout << "wrote " << opt.out << '\n';

    if (opt.smoke) {
      const bool pass = totalErrors == 0 && warmSpeedup > 1.0 &&
                        fingerprintMatch && cleanShutdown;
      std::cout << (pass ? "SMOKE OK\n" : "SMOKE FAIL\n");
      return pass ? 0 : 1;
    }
    return 0;
  } catch (const rrsn::Error& e) {
    std::cerr << "bench_serve: " << e.what() << '\n';
    return 1;
  }
}

// Ablation A: optimizer quality.
//
// The paper solves selective hardening with SPEA-2 (via Opt4J) and cites
// NSGA-II as the standard alternative.  Because both objectives are
// linear, the problem is a bi-objective 0/1 knapsack, for which we can
// compute the exact Pareto front (DP) on small instances and a strong
// greedy front on all of them.  This bench compares, per benchmark:
//
//   SPEA-2, NSGA-II, random search (same evaluation budget), greedy,
//   and exact DP (where feasible)
//
// by normalized hypervolume (higher is better, 1.0 = exact) and by the
// additive-epsilon distance to the best known front.
#include <iostream>

#include "bench_common.hpp"
#include "moo/baselines.hpp"
#include "moo/nsga2.hpp"
#include "support/table.hpp"

int main() {
  using namespace rrsn;
  const std::uint64_t seed = bench::envOrU64("RRSN_SEED", 2022);
  const double scale = bench::envOrDouble("RRSN_SCALE", 1.0);

  TextTable table({"Design", "optimizer", "evals", "hypervolume (norm.)",
                   "eps to best front", "min-cost sol (c, d)"});
  table.setAlign(0, TextTable::Align::Left);
  table.setAlign(1, TextTable::Align::Left);

  for (const char* name :
       {"TreeFlat", "TreeUnbalanced", "q12710", "MBIST_1_5_5", "a586710"}) {
    const benchgen::BenchmarkSpec& spec = benchgen::findBenchmark(name);
    const rsn::Network net = benchgen::buildBenchmark(spec);
    Rng rng(seed ^ std::hash<std::string>{}(spec.name));
    const rsn::CriticalitySpec cspec = rsn::randomSpec(net, {}, rng);
    const auto analysis = crit::CriticalityAnalyzer(net, cspec).run();
    const auto problem = harden::HardeningProblem::assemble(net, analysis);

    moo::EvolutionOptions options;
    options.populationSize = spec.populationSize();
    options.generations = std::max<std::size_t>(
        50, static_cast<std::size_t>(
                static_cast<double>(spec.generations) * scale));
    options.seed = seed;

    struct Entry {
      std::string label;
      moo::RunResult result;
    };
    std::vector<Entry> entries;
    entries.push_back({"SPEA-2", moo::runSpea2(problem.linear, options)});
    entries.push_back({"NSGA-II", moo::runNsga2(problem.linear, options)});
    entries.push_back(
        {"random",
         moo::randomSearch(problem.linear,
                           options.populationSize * (options.generations + 1),
                           seed)});
    entries.push_back({"greedy", moo::greedyFront(problem.linear)});

    // Exact DP front when the instance is small enough.
    std::vector<moo::Objectives> best;
    std::string bestLabel = "greedy";
    try {
      best = moo::exactParetoFront(problem.linear);
      bestLabel = "exact DP";
    } catch (const Error&) {
      best = entries.back().result.archive.front();  // fall back to greedy
    }

    const moo::Objectives ref{problem.maxCost + 1, problem.maxDamage + 1};
    const double bestHv = moo::hypervolume2D(best, ref);

    table.addRow({spec.name, bestLabel, "-", "1.000", "0", "-"});
    for (const Entry& e : entries) {
      const auto front = e.result.archive.front();
      const double hv = moo::hypervolume2D(front, ref) / bestHv;
      const double eps = moo::additiveEpsilon(front, best);
      const auto sols =
          harden::extractPaperSolutions(e.result.archive, problem);
      char hvBuf[32];
      std::snprintf(hvBuf, sizeof hvBuf, "%.4f", hv);
      char epsBuf[32];
      std::snprintf(epsBuf, sizeof epsBuf, "%.0f", eps);
      table.addRow(
          {"", e.label,
           e.result.stats.evaluations == 0
               ? "-"
               : withThousands(std::uint64_t{e.result.stats.evaluations}),
           hvBuf, epsBuf,
           sols.minCost ? "(" + withThousands(sols.minCost->obj.cost) + ", " +
                              withThousands(sols.minCost->obj.damage) + ")"
                        : "-"});
    }
    table.addSeparator();
    std::cout << "." << std::flush;
  }
  std::cout << "\n\nAblation A — optimizer quality on the hardening "
               "bi-objective knapsack\n"
            << table
            << "\n(SPEA-2/NSGA-II should reach >= 0.99 normalized "
               "hypervolume and clearly beat random search at the same "
               "evaluation budget)\n";
  return 0;
}

// Regenerates Table I: "Robust RSN Synthesis — SPEA-II Varying
// Optimization Criteria".
//
// For every benchmark: the initial assessment (max cost when everything
// is hardened, accumulated single-defect damage when nothing is), the
// SPEA-2 run with the paper's population rule and generation counts, and
// the two extracted solutions
//   * minimize cost   subject to damage <= 10 % of the initial damage,
//   * minimize damage subject to cost   <= 10 % of the max cost,
// plus the execution time [m:s].
//
// Environment knobs:
//   RRSN_TABLE1_SET    small | medium | all   (default: medium)
//                      small:  networks with <= 2,000 primitives
//                      medium: networks with <= 160,000 primitives
//                      all:    every row incl. the ~10^6-segment MBISTs
//   RRSN_TABLE1_SCALE  generation multiplier (default 0.1; 1.0 = the
//                      paper's full generation counts)
//   RRSN_TABLE1_SEED   RNG seed (default 2022)
//
// Absolute values differ from the paper (synthetic network instances,
// unspecified cost scale — see EXPERIMENTS.md); the shape to check is:
// damage drops by ~10x at a fraction of the full-hardening cost, and the
// runtime scales to the million-segment networks.
#include <iostream>

#include "bench_common.hpp"
#include "support/table.hpp"

int main() {
  using namespace rrsn;
  using bench::envOr;

  const std::string set = envOr("RRSN_TABLE1_SET", "medium");
  const double scale = bench::envOrDouble("RRSN_TABLE1_SCALE", 0.1);
  const std::uint64_t seed = bench::envOrU64("RRSN_TABLE1_SEED", 2022);
  const std::size_t primitiveCap = set == "small"    ? 2'000
                                   : set == "medium" ? 160'000
                                                     : ~std::size_t{0};

  std::cout << "Table I — Robust RSN Synthesis, SPEA-II varying "
               "optimization criteria\n"
            << "(set=" << set << ", generation scale=" << scale
            << ", seed=" << seed
            << "; RRSN_TABLE1_SET=all RRSN_TABLE1_SCALE=1 reproduces the "
               "full experiment)\n\n";

  TextTable table({"Design", "#Seg", "#Mux", "Max. Cost", "Max. Damage",
                   "Gen.", "Cost", "Damage", "Cost", "Damage", "[m:s]"});
  table.setAlign(0, TextTable::Align::Left);

  TextTable compare({"Design", "damage kept (min-cost sol)", "paper",
                     "cost fraction (min-cost sol)", "paper",
                     "damage kept (min-damage sol)", "paper"});
  compare.setAlign(0, TextTable::Align::Left);

  const auto pct = [](double num, double den) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%",
                  den > 0 ? 100.0 * num / den : 0.0);
    return std::string(buf);
  };

  std::size_t skipped = 0;
  for (const benchgen::BenchmarkSpec& spec : benchgen::table1Benchmarks()) {
    if (spec.segments + spec.muxes > primitiveCap) {
      ++skipped;
      continue;
    }
    const bench::RowResult row = bench::runTable1Row(spec, scale, seed);
    const auto obj = [](const std::optional<moo::Objectives>& o,
                        bool cost) -> std::string {
      if (!o) return "-";
      return withThousands(cost ? o->cost : o->damage);
    };
    table.addRow({spec.name, withThousands(std::uint64_t{spec.segments}),
                  withThousands(std::uint64_t{spec.muxes}),
                  withThousands(row.maxCost), withThousands(row.maxDamage),
                  withThousands(std::uint64_t{row.generationsUsed}),
                  obj(row.minCost, true), obj(row.minCost, false),
                  obj(row.minDamage, true), obj(row.minDamage, false),
                  formatMinSec(row.seconds)});
    // Shape comparison against the published row.
    compare.addRow(
        {spec.name,
         row.minCost ? pct(static_cast<double>(row.minCost->damage),
                           static_cast<double>(row.maxDamage))
                     : "-",
         pct(static_cast<double>(spec.paper.minCostDamage),
             static_cast<double>(spec.paper.maxDamage)),
         row.minCost ? pct(static_cast<double>(row.minCost->cost),
                           static_cast<double>(row.maxCost))
                     : "-",
         pct(static_cast<double>(spec.paper.minCostCost),
             static_cast<double>(spec.paper.maxCost)),
         row.minDamage ? pct(static_cast<double>(row.minDamage->damage),
                             static_cast<double>(row.maxDamage))
                       : "-",
         pct(static_cast<double>(spec.paper.minDamageDamage),
             static_cast<double>(spec.paper.maxDamage))});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n" << table << '\n';
  if (skipped > 0) {
    std::cout << "(" << skipped
              << " larger benchmarks skipped; run with RRSN_TABLE1_SET=all "
                 "to include them)\n\n";
  }
  std::cout << "Shape check vs the published Table I (columns 7-10 as "
               "fractions of the initial assessment):\n"
            << compare << '\n';
  return 0;
}

// Regenerates the paper's figures on the running example:
//   Fig. 1 — the example RSN (netlist form + Graphviz DOT),
//   Fig. 2 — its directed-graph model (DOT),
//   Fig. 3 — the annotated binary decomposition tree (ASCII + DOT),
//   Fig. 4 — the accessibility loss under "m0 stuck-at-1" (the paper's
//            example fault: instruments i1, i2, i3 become inaccessible).
//
// DOT output can be rendered with `dot -Tpng`.
#include <iostream>

#include "fault/effects.hpp"
#include "rsn/example_networks.hpp"
#include "rsn/graph_view.hpp"
#include "rsn/netlist_io.hpp"
#include "sp/decomposition.hpp"

int main() {
  using namespace rrsn;
  const rsn::Network net = rsn::makeFig1Network();
  const rsn::CriticalitySpec spec = rsn::makeFig1Spec(net);

  std::cout << "===== Fig. 1 — example RSN (netlist form) =====\n"
            << rsn::netlistToString(net) << '\n';

  std::cout << "===== Fig. 2 — directed graph model (DOT) =====\n"
            << rsn::toDot(net) << '\n';

  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(spec);
  std::cout << "===== Fig. 3 — annotated binary decomposition tree =====\n"
            << tree.toAscii() << '\n'
            << "DOT form:\n"
            << tree.toDot("fig3_decomposition_tree") << '\n';

  std::cout << "===== Fig. 4 — fault effect of stuck(m0=1) =====\n";
  const fault::Fault f = fault::Fault::muxStuck(net.findMux("m0"), 1);
  const auto loss = fault::lossUnderFaultTree(tree, f);
  std::cout << "fault: " << fault::describe(net, f) << '\n'
            << "unobservable instruments:";
  loss.unobservable.forEachSet([&](std::size_t i) {
    std::cout << ' ' << net.instrument(static_cast<rsn::InstrumentId>(i)).name;
  });
  std::cout << "\nunsettable instruments:  ";
  loss.unsettable.forEachSet([&](std::size_t i) {
    std::cout << ' ' << net.instrument(static_cast<rsn::InstrumentId>(i)).name;
  });
  std::cout << "\n(paper: \"the instruments i1, i2 and i3 become "
               "inaccessible\")\n\n";

  std::cout << "weighted damage of this fault: "
            << fault::damageOfLoss(spec, loss) << '\n';
  return 0;
}

// Microbenchmarks (google-benchmark) of the performance-critical kernels:
// decomposition-tree construction, weight annotation, per-primitive
// damage computation, the graph-oracle fault effect (the O(N) path we
// avoid), one fault-dictionary syndrome row (batched frontier sweeps vs
// the per-probe simulator reference), genome variation operators and one
// SPEA-2 generation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "benchgen/registry.hpp"
#include "crit/analyzer.hpp"
#include "diag/batched.hpp"
#include "diag/diagnosis.hpp"
#include "fault/effects.hpp"
#include "harden/hardening.hpp"
#include "moo/spea2.hpp"
#include "rsn/flat.hpp"
#include "rsn/graph_view.hpp"
#include "support/parallel.hpp"

namespace {

using namespace rrsn;

const rsn::Network& netOf(const std::string& name) {
  static std::map<std::string, rsn::Network> cache;
  auto it = cache.find(name);
  if (it == cache.end())
    it = cache.emplace(name, benchgen::buildBenchmark(name)).first;
  return it->second;
}

const rsn::CriticalitySpec& specOf(const std::string& name) {
  static std::map<std::string, rsn::CriticalitySpec> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    Rng rng(7);
    it = cache.emplace(name, rsn::randomSpec(netOf(name), {}, rng)).first;
  }
  return it->second;
}

const rsn::GraphView& gvOf(const std::string& name) {
  static std::map<std::string, rsn::GraphView> cache;
  auto it = cache.find(name);
  if (it == cache.end())
    it = cache.emplace(name, rsn::buildGraphView(netOf(name))).first;
  return it->second;
}

const rsn::FlatNetwork& flatOf(const std::string& name) {
  static std::map<std::string, std::shared_ptr<const rsn::FlatNetwork>> cache;
  auto it = cache.find(name);
  if (it == cache.end())
    it = cache.emplace(name, rsn::FlatNetwork::lower(netOf(name))).first;
  return *it->second;
}

void BM_DecompositionBuild(benchmark::State& state,
                           const std::string& name) {
  const rsn::Network& net = netOf(name);
  for (auto _ : state) {
    auto tree = sp::DecompositionTree::build(net);
    benchmark::DoNotOptimize(tree.nodeCount());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.primitiveCount()));
}

void BM_Annotate(benchmark::State& state, const std::string& name) {
  const rsn::Network& net = netOf(name);
  auto tree = sp::DecompositionTree::build(net);
  const auto& spec = specOf(name);
  for (auto _ : state) {
    tree.annotate(spec);
    benchmark::DoNotOptimize(tree.node(tree.root()).sumObs);
  }
}

void BM_CriticalityAnalysis(benchmark::State& state,
                            const std::string& name) {
  const rsn::Network& net = netOf(name);
  const auto& spec = specOf(name);
  const crit::CriticalityAnalyzer analyzer(net, spec);
  for (auto _ : state) {
    const auto result = analyzer.run();
    benchmark::DoNotOptimize(result.totalDamage());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.primitiveCount()));
}

void BM_GraphOracleSingleFault(benchmark::State& state,
                               const std::string& name) {
  const rsn::Network& net = netOf(name);
  const rsn::GraphView gv = rsn::buildGraphView(net);
  const fault::Fault f = fault::Fault::segmentBreak(
      static_cast<rsn::SegmentId>(net.segments().size() / 2));
  for (auto _ : state) {
    const auto loss = fault::lossUnderFaultGraph(net, gv, f);
    benchmark::DoNotOptimize(loss.unobservable.count());
  }
}

// One dictionary syndrome row for a mid-network segment break — the
// dominant inner loop of the dictionary build.  The batched engine pays
// a handful of frontier sweeps over the flat control view; the per-probe
// reference pays 2*|instruments| retargeted accesses on a fresh
// simulator.  The ratio of these two rows is the dictionary speedup.
void BM_DictRowBatched(benchmark::State& state, const std::string& name) {
  const rsn::Network& net = netOf(name);
  const diag::BatchedSyndromeEngine engine(net);
  const fault::Fault f = fault::Fault::segmentBreak(
      static_cast<rsn::SegmentId>(net.segments().size() / 2));
  for (auto _ : state) {
    const diag::Syndrome row = engine.row(&f, 0);
    benchmark::DoNotOptimize(row.passed.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.instruments().size()));
}

void BM_DictRowProbe(benchmark::State& state, const std::string& name) {
  const rsn::Network& net = netOf(name);
  const fault::Fault f = fault::Fault::segmentBreak(
      static_cast<rsn::SegmentId>(net.segments().size() / 2));
  for (auto _ : state) {
    const diag::Syndrome row = diag::FaultDictionary::measure(net, &f);
    benchmark::DoNotOptimize(row.passed.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.instruments().size()));
}

// Flat-vs-pointer iteration kernels: the same traversal against the
// pointer model (Network / Digraph adjacency vectors / GraphView) and
// against the FlatNetwork arena (contiguous id-indexed spans + CSR).
// Their ratios quantify what the SoA lowering buys the hot consumers.

/// Sums every segment length through the pointer model.
void BM_SegmentScanPointer(benchmark::State& state, const std::string& name) {
  const rsn::Network& net = netOf(name);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const rsn::Segment& seg : net.segments()) sum += seg.length;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.segments().size()));
}

/// The same sum over the flat segLength span.
void BM_SegmentScanFlat(benchmark::State& state, const std::string& name) {
  const rsn::FlatNetwork& flat = flatOf(name);
  const auto lengths = flat.segLength();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (const std::uint32_t len : lengths) sum += len;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lengths.size()));
}

/// Walks every vertex's successor list in the Digraph (per-vertex
/// heap-allocated adjacency vectors).
void BM_NeighborWalkPointer(benchmark::State& state, const std::string& name) {
  const rsn::GraphView& gv = gvOf(name);
  std::int64_t edges = 0;
  for (auto _ : state) {
    std::uint64_t sum = 0;
    edges = 0;
    for (graph::VertexId v = 0; v < gv.graph.vertexCount(); ++v)
      for (const graph::VertexId w : gv.graph.successors(v)) {
        sum += w;
        edges += 1;
      }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          edges);
}

/// The same walk over the flat forward CSR (one contiguous edge array).
void BM_NeighborWalkFlat(benchmark::State& state, const std::string& name) {
  const rsn::FlatNetwork& flat = flatOf(name);
  const auto offsets = flat.fwdOffsets();
  const auto edges = flat.fwdEdges();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::size_t v = 0; v + 1 < offsets.size(); ++v)
      for (std::uint64_t e = offsets[v]; e < offsets[v + 1]; ++e)
        sum += edges[e].other;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(edges.size()));
}

/// Gathers every mux's control tuple (control segment + branch count)
/// through the pointer model: Mux records plus the GraphView's
/// per-mux branch-exit vectors.
void BM_ControlGatherPointer(benchmark::State& state,
                             const std::string& name) {
  const rsn::Network& net = netOf(name);
  const rsn::GraphView& gv = gvOf(name);
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (rsn::MuxId m = 0; m < net.muxes().size(); ++m)
      sum += net.muxes()[m].controlSegment + gv.muxBranchExit[m].size();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(net.muxes().size()));
}

/// The same gather over the flat control tuples (muxControl span +
/// branch CSR offsets).
void BM_ControlGatherFlat(benchmark::State& state, const std::string& name) {
  const rsn::FlatNetwork& flat = flatOf(name);
  const auto control = flat.muxControl();
  const auto branchOffsets = flat.muxBranchOffsets();
  for (auto _ : state) {
    std::uint64_t sum = 0;
    for (std::size_t m = 0; m < control.size(); ++m)
      sum += control[m] + (branchOffsets[m + 1] - branchOffsets[m]);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(control.size()));
}

// Density 0.05 keeps the parents in the sparse representation; 0.3 puts
// them in the dense (word-packed) one — the two rows of the hybrid
// genome's crossover matrix.
void runGenomeCrossover(benchmark::State& state, double density) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const auto a = moo::Genome::random(bits, density, rng);
  const auto b = moo::Genome::random(bits, density, rng);
  std::size_t point = 0;
  for (auto _ : state) {
    auto child = moo::Genome::crossover(a, b, point);
    benchmark::DoNotOptimize(child.ones());
    point = (point + bits / 7 + 1) % (bits + 1);
  }
}

void BM_GenomeCrossover(benchmark::State& state) {
  runGenomeCrossover(state, 0.05);
}

void BM_GenomeCrossoverDense(benchmark::State& state) {
  runGenomeCrossover(state, 0.3);
}

void runGenomeMutate(benchmark::State& state, double density) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  auto g = moo::Genome::random(bits, density, rng);
  for (auto _ : state) {
    g.mutatePerBit(0.01, rng);
    benchmark::DoNotOptimize(g.ones());
  }
}

void BM_GenomeMutate(benchmark::State& state) { runGenomeMutate(state, 0.05); }

void BM_GenomeMutateDense(benchmark::State& state) {
  runGenomeMutate(state, 0.3);
}

moo::LinearBiProblem syntheticProblem(std::size_t bits) {
  Rng rng(11);
  moo::LinearBiProblem p;
  p.cost.reserve(bits);
  p.gain.reserve(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    p.cost.push_back(rng.below(1000) + 1);
    p.gain.push_back(rng.below(1000) + 1);
  }
  return p;
}

/// A crossover child's objectives the old way: materialize the child and
/// re-scan all of its one-bits.
void runCrossoverObjectivesFull(benchmark::State& state, double density) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto problem = syntheticProblem(bits);
  const std::uint64_t damageTotal = problem.damageTotal();
  Rng rng(5);
  const auto a = moo::Genome::random(bits, density, rng);
  const auto b = moo::Genome::random(bits, density, rng);
  std::size_t point = 0;
  for (auto _ : state) {
    const auto child = moo::Genome::crossover(a, b, point);
    const auto obj = moo::evaluate(problem, child, damageTotal);
    benchmark::DoNotOptimize(obj.cost);
    point = (point + bits / 7 + 1) % (bits + 1);
  }
}

/// The same objectives from the parents' WeightIndex prefix sums — two
/// O(log ones) lookups, no child scan.
void runCrossoverObjectivesIndexed(benchmark::State& state, double density) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto problem = syntheticProblem(bits);
  const std::uint64_t damageTotal = problem.damageTotal();
  Rng rng(5);
  const auto a = moo::Genome::random(bits, density, rng);
  const auto b = moo::Genome::random(bits, density, rng);
  const moo::WeightIndex& ia = a.weightIndex(problem);
  const moo::WeightIndex& ib = b.weightIndex(problem);
  std::size_t point = 0;
  for (auto _ : state) {
    const auto pa = ia.below(a, point);
    const auto pb = ib.below(b, point);
    moo::Objectives obj;
    obj.cost = pa.cost + (ib.total().cost - pb.cost);
    obj.damage = damageTotal - (pa.gain + (ib.total().gain - pb.gain));
    benchmark::DoNotOptimize(obj.cost);
    point = (point + bits / 7 + 1) % (bits + 1);
  }
}

void BM_CrossoverObjectivesFullSparse(benchmark::State& state) {
  runCrossoverObjectivesFull(state, 0.05);
}
void BM_CrossoverObjectivesFullDense(benchmark::State& state) {
  runCrossoverObjectivesFull(state, 0.3);
}
void BM_CrossoverObjectivesIndexedSparse(benchmark::State& state) {
  runCrossoverObjectivesIndexed(state, 0.05);
}
void BM_CrossoverObjectivesIndexedDense(benchmark::State& state) {
  runCrossoverObjectivesIndexed(state, 0.3);
}

/// Post-mutation objectives the old way: full O(ones) re-evaluation.
void BM_MutateObjectivesFull(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto problem = syntheticProblem(bits);
  const std::uint64_t damageTotal = problem.damageTotal();
  Rng rng(5);
  auto g = moo::Genome::random(bits, 0.3, rng);
  for (auto _ : state) {
    g.mutatePerBit(0.01, rng);
    const auto obj = moo::evaluate(problem, g, damageTotal);
    benchmark::DoNotOptimize(obj.cost);
  }
}

/// Post-mutation objectives incrementally: +-weight deltas in O(flips).
void BM_MutateObjectivesIncremental(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const auto problem = syntheticProblem(bits);
  const std::uint64_t damageTotal = problem.damageTotal();
  Rng rng(5);
  auto g = moo::Genome::random(bits, 0.3, rng);
  moo::Objectives obj = moo::evaluate(problem, g, damageTotal);
  for (auto _ : state) {
    const std::uint64_t draw = rng.binomial(bits, 0.01);
    const auto sampled =
        rng.sampleIndices(bits, std::min<std::size_t>(draw, bits));
    const std::vector<std::uint32_t> flips(sampled.begin(), sampled.end());
    g.applyFlips(flips, [&](std::uint32_t idx, bool nowSet) {
      if (nowSet) {
        obj.cost += problem.cost[idx];
        obj.damage -= problem.gain[idx];
      } else {
        obj.cost -= problem.cost[idx];
        obj.damage += problem.gain[idx];
      }
    });
    benchmark::DoNotOptimize(obj.cost);
  }
}

void BM_Spea2Generation(benchmark::State& state, const std::string& name) {
  const rsn::Network& net = netOf(name);
  const auto analysis =
      crit::CriticalityAnalyzer(net, specOf(name)).run();
  const auto problem = harden::HardeningProblem::assemble(net, analysis);
  moo::EvolutionOptions options;
  options.populationSize = 100;
  options.seed = 3;
  options.generations = 1;
  for (auto _ : state) {
    const auto result = moo::runSpea2(problem.linear, options);
    benchmark::DoNotOptimize(result.archive.size());
  }
}

/// Console reporter that additionally collects every run so the results
/// can be re-emitted as BENCH_micro.json (same schema family as
/// BENCH_scalability.json: kernel timings + thread count, diffable
/// across PRs).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double realTime = 0.0;
    double cpuTime = 0.0;
    std::string timeUnit;
    std::int64_t iterations = 0;
    double itemsPerSecond = 0.0;
  };

  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& r : report) {
      Row row;
      row.name = r.benchmark_name();
      row.realTime = r.GetAdjustedRealTime();
      row.cpuTime = r.GetAdjustedCPUTime();
      row.timeUnit = benchmark::GetTimeUnitString(r.time_unit);
      row.iterations = r.iterations;
      const auto it = r.counters.find("items_per_second");
      if (it != r.counters.end()) row.itemsPerSecond = it->second;
      rows.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(report);
  }

  std::vector<Row> rows;
};

}  // namespace

int main(int argc, char** argv) {
  // This google-benchmark version registers by C-string name + callable;
  // bind the benchmark argument through a small lambda.
  const auto registerNamed = [](const std::string& title,
                                void (*fn)(benchmark::State&,
                                           const std::string&),
                                const std::string& arg) {
    benchmark::RegisterBenchmark(
        title.c_str(), [fn, arg](benchmark::State& st) { fn(st, arg); });
  };
  for (const char* name : {"q12710", "p93791", "MBIST_2_20_20"}) {
    registerNamed("DecompositionBuild/" + std::string(name),
                  BM_DecompositionBuild, name);
    registerNamed("Annotate/" + std::string(name), BM_Annotate, name);
    registerNamed("CriticalityAnalysis/" + std::string(name),
                  BM_CriticalityAnalysis, name);
  }
  registerNamed("GraphOracleSingleFault/q12710", BM_GraphOracleSingleFault,
                "q12710");
  registerNamed("GraphOracleSingleFault/p93791", BM_GraphOracleSingleFault,
                "p93791");
  for (const char* name : {"q12710", "MBIST_1_5_20"}) {
    registerNamed("DictRowBatched/" + std::string(name), BM_DictRowBatched,
                  name);
    registerNamed("DictRowProbe/" + std::string(name), BM_DictRowProbe, name);
  }
  for (const char* name : {"q12710", "MBIST_2_20_20"}) {
    registerNamed("SegmentScan/pointer/" + std::string(name),
                  BM_SegmentScanPointer, name);
    registerNamed("SegmentScan/flat/" + std::string(name), BM_SegmentScanFlat,
                  name);
    registerNamed("NeighborWalk/pointer/" + std::string(name),
                  BM_NeighborWalkPointer, name);
    registerNamed("NeighborWalk/flat/" + std::string(name),
                  BM_NeighborWalkFlat, name);
    registerNamed("ControlGather/pointer/" + std::string(name),
                  BM_ControlGatherPointer, name);
    registerNamed("ControlGather/flat/" + std::string(name),
                  BM_ControlGatherFlat, name);
  }
  benchmark::RegisterBenchmark("GenomeCrossover", BM_GenomeCrossover)
      ->Arg(1 << 10)
      ->Arg(1 << 16)
      ->Arg(1 << 20);
  benchmark::RegisterBenchmark("GenomeCrossoverDense", BM_GenomeCrossoverDense)
      ->Arg(1 << 10)
      ->Arg(1 << 16)
      ->Arg(1 << 20);
  benchmark::RegisterBenchmark("GenomeMutate", BM_GenomeMutate)
      ->Arg(1 << 10)
      ->Arg(1 << 16)
      ->Arg(1 << 20);
  benchmark::RegisterBenchmark("GenomeMutateDense", BM_GenomeMutateDense)
      ->Arg(1 << 10)
      ->Arg(1 << 16)
      ->Arg(1 << 20);
  benchmark::RegisterBenchmark("CrossoverObjectivesFull/sparse",
                               BM_CrossoverObjectivesFullSparse)
      ->Arg(1 << 16)
      ->Arg(1 << 20);
  benchmark::RegisterBenchmark("CrossoverObjectivesFull/dense",
                               BM_CrossoverObjectivesFullDense)
      ->Arg(1 << 16)
      ->Arg(1 << 20);
  benchmark::RegisterBenchmark("CrossoverObjectivesIndexed/sparse",
                               BM_CrossoverObjectivesIndexedSparse)
      ->Arg(1 << 16)
      ->Arg(1 << 20);
  benchmark::RegisterBenchmark("CrossoverObjectivesIndexed/dense",
                               BM_CrossoverObjectivesIndexedDense)
      ->Arg(1 << 16)
      ->Arg(1 << 20);
  benchmark::RegisterBenchmark("MutateObjectivesFull", BM_MutateObjectivesFull)
      ->Arg(1 << 16)
      ->Arg(1 << 20);
  benchmark::RegisterBenchmark("MutateObjectivesIncremental",
                               BM_MutateObjectivesIncremental)
      ->Arg(1 << 16)
      ->Arg(1 << 20);
  registerNamed("Spea2Generation/q12710", BM_Spea2Generation, "q12710");
  registerNamed("Spea2Generation/p93791", BM_Spea2Generation, "p93791");

  benchmark::Initialize(&argc, argv);
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  std::ofstream jsonFile("BENCH_micro.json");
  bench::JsonWriter json(jsonFile);
  json.beginObject()
      .kv("bench", "micro")
      .kv("threads", static_cast<std::uint64_t>(threadCount()))
      .key("kernels")
      .beginArray();
  for (const CollectingReporter::Row& row : reporter.rows) {
    json.beginObject()
        .kv("name", row.name)
        .kv("real_time", row.realTime)
        .kv("cpu_time", row.cpuTime)
        .kv("time_unit", row.timeUnit)
        .kv("iterations", static_cast<std::int64_t>(row.iterations))
        .kv("items_per_second", row.itemsPerSecond)
        .endObject();
  }
  json.endArray().endObject();
  jsonFile << "\n";
  return 0;
}

// Ablation C: sensitivity of the hardening cost to the *placement* of
// critical instruments.
//
// The paper draws the 10 % observation-/control-critical instruments
// uniformly at random (Sec. VI).  Because a critical weight is as large
// as the sum of all uncritical weights, almost all of the accumulated
// damage comes from the faults that can hit a critical instrument — so
// the achievable cost of the "damage <= 10 %" solution depends strongly
// on how many primitives can hit one.  A critical register at the
// scan-out end of its chain is immune to upstream observability loss;
// one in the middle of a long unprotected chain needs the whole chain
// hardened.  This bench measures whether placing criticals at the scan
// ends (RobustEnds) lowers the hardening cost compared to the paper's
// uniform placement, with the knee computed greedily so the result is
// optimizer-independent.
#include <iostream>

#include "bench_common.hpp"
#include "moo/baselines.hpp"
#include "support/table.hpp"

int main() {
  using namespace rrsn;
  const std::uint64_t seed = bench::envOrU64("RRSN_SEED", 2022);

  TextTable table({"Design", "placement", "max damage",
                   "min cost @ damage<=10%", "cost fraction",
                   "hardened primitives"});
  table.setAlign(0, TextTable::Align::Left);
  table.setAlign(1, TextTable::Align::Left);

  for (const char* name : {"TreeFlat_Ex", "q12710", "p34392", "MBIST_1_5_20",
                           "MBIST_2_20_20"}) {
    const benchgen::BenchmarkSpec& spec = benchgen::findBenchmark(name);
    const rsn::Network net = benchgen::buildBenchmark(spec);
    for (const auto placement : {rsn::CriticalPlacement::Random,
                                 rsn::CriticalPlacement::RobustEnds}) {
      rsn::SpecOptions specOptions;
      specOptions.placement = placement;
      Rng rng(seed ^ std::hash<std::string>{}(spec.name));
      const rsn::CriticalitySpec cspec =
          rsn::randomSpec(net, specOptions, rng);
      const auto analysis = crit::CriticalityAnalyzer(net, cspec).run();
      const auto problem = harden::HardeningProblem::assemble(net, analysis);
      const auto knee = moo::greedyMinCost(
          problem.linear,
          static_cast<std::uint64_t>(
              0.10 * static_cast<double>(problem.maxDamage)));
      char frac[32];
      std::snprintf(frac, sizeof frac, "%.1f%%",
                    knee ? 100.0 * static_cast<double>(knee->obj.cost) /
                               static_cast<double>(problem.maxCost)
                         : 0.0);
      table.addRow({spec.name,
                    placement == rsn::CriticalPlacement::Random
                        ? "random (paper)"
                        : "robust ends",
                    withThousands(problem.maxDamage),
                    knee ? withThousands(knee->obj.cost) : "-",
                    knee ? frac : "-",
                    knee ? withThousands(std::uint64_t{knee->genome.ones()})
                         : "-"});
    }
    table.addSeparator();
    std::cout << "." << std::flush;
  }
  std::cout << "\n\nAblation C — critical-instrument placement vs hardening "
               "cost (greedy knee)\n"
            << table
            << "\n(finding: with the paper's symmetric weight recipe the "
               "placement barely matters — moving a critical register "
               "toward scan-out removes its observability exposure to "
               "chain breaks but adds the mirror-image settability "
               "exposure.  Placement only pays off for instruments that "
               "are critical in a single direction, as in the "
               "runtime_monitoring example; the wide spread of published "
               "cost fractions must instead come from how *bypassable* "
               "the critical instruments' chains are)\n";
  return 0;
}

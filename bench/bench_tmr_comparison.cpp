// Hardware-overhead comparison against full redundancy (Sec. I).
//
// "Using conventional approaches, such as Triple Modular Redundancy
// (TMR) [3], for the entire RSN requires high hardware costs."
//
// Four protection levels per benchmark, same cost model:
//   * full TMR            — harden every primitive (the paper's "Max.
//                           Cost" column; damage 0, every fault avoided);
//   * FT-RSN [4]          — fault-*tolerant* augmentation (skip
//                           connectivities; tolerates segment breaks but
//                           changes the topology and breaks pattern
//                           compatibility — see harden/fault_tolerant.hpp);
//   * critical protection — harden exactly the primitives whose faults
//                           can make a *critical* instrument
//                           inaccessible (what runtime safety requires);
//   * 10 % damage knee    — the paper's min-cost solution.
// The ratio columns show how much cheaper selective hardening is while
// retaining the guarantee the system actually needs.
#include <iostream>

#include "bench_common.hpp"
#include "fault/effects.hpp"
#include "harden/fault_tolerant.hpp"
#include "moo/baselines.hpp"
#include "support/table.hpp"

int main() {
  using namespace rrsn;
  const std::uint64_t seed = bench::envOrU64("RRSN_SEED", 2022);

  TextTable table({"Design", "full TMR cost", "FT-RSN [4] added cost",
                   "critical-protection cost", "vs TMR",
                   "10% damage-knee cost", "vs TMR",
                   "criticals protected"});
  table.setAlign(0, TextTable::Align::Left);

  for (const char* name : {"TreeFlat", "TreeUnbalanced", "TreeBalanced",
                           "q12710", "a586710", "p34392", "t512505",
                           "MBIST_1_5_5", "MBIST_2_5_5"}) {
    const benchgen::BenchmarkSpec& spec = benchgen::findBenchmark(name);
    const rsn::Network net = benchgen::buildBenchmark(spec);
    Rng rng(seed ^ std::hash<std::string>{}(spec.name));
    const rsn::CriticalitySpec cspec = rsn::randomSpec(net, {}, rng);
    const auto analysis = crit::CriticalityAnalyzer(net, cspec).run();
    const auto problem = harden::HardeningProblem::assemble(net, analysis);

    // Exact critical-protection set: every primitive with a fault whose
    // loss includes a critical instrument.
    sp::DecompositionTree tree = sp::DecompositionTree::build(net);
    tree.annotate(cspec);
    const fault::FaultUniverse universe(net);
    std::vector<bool> mustHarden(net.primitiveCount(), false);
    for (const fault::Fault& f : universe.faults()) {
      const auto loss = fault::lossUnderFaultTree(tree, f);
      bool critical = false;
      loss.unobservable.forEachSet([&](std::size_t i) {
        critical |= cspec.of(static_cast<rsn::InstrumentId>(i)).criticalObs;
      });
      loss.unsettable.forEachSet([&](std::size_t i) {
        critical |= cspec.of(static_cast<rsn::InstrumentId>(i)).criticalSet;
      });
      if (critical) {
        const rsn::PrimitiveRef ref{f.kind == fault::FaultKind::SegmentBreak
                                        ? rsn::PrimitiveRef::Kind::Segment
                                        : rsn::PrimitiveRef::Kind::Mux,
                                    f.prim};
        mustHarden[net.linearId(ref)] = true;
      }
    }
    std::uint64_t criticalCost = 0;
    std::vector<std::uint32_t> criticalSet;
    for (std::size_t j = 0; j < net.primitiveCount(); ++j) {
      if (mustHarden[j]) {
        criticalCost += problem.linear.cost[j];
        criticalSet.push_back(static_cast<std::uint32_t>(j));
      }
    }
    // Verify the claim with the exact exposure check.
    const harden::HardeningPlan plan(
        net, moo::Genome(net.primitiveCount(), criticalSet));
    const bool protectedOk =
        harden::criticalExposures(net, cspec, plan).empty();

    const auto knee = moo::greedyMinCost(
        problem.linear, static_cast<std::uint64_t>(
                            0.10 * static_cast<double>(problem.maxDamage)));

    const auto ratio = [&](std::uint64_t cost) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.1f%%",
                    100.0 * static_cast<double>(cost) /
                        static_cast<double>(problem.maxCost));
      return std::string(buf);
    };
    const harden::FaultTolerantRsn ft = harden::augmentFaultTolerant(net);
    table.addRow({spec.name, withThousands(problem.maxCost),
                  withThousands(ft.addedCost), withThousands(criticalCost),
                  ratio(criticalCost),
                  knee ? withThousands(knee->obj.cost) : "-",
                  knee ? ratio(knee->obj.cost) : "-",
                  protectedOk ? "yes (verified)" : "NO"});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\nSelective hardening vs full TMR (identical cost model)\n"
            << table
            << "\n(critical protection = cheapest set guaranteeing that no "
               "single fault can cut off a critical instrument; full TMR "
               "buys the same guarantee for every instrument at the full "
               "cost.  'verified' means the exact per-fault exposure check "
               "confirms the guarantee)\n";
  return 0;
}

// Diagnosability study.
//
// Fault-tolerant RSN schemes [4] must first *locate* a defect before
// access can be re-routed — the paper lists the required "diagnostic
// support [5]" among their drawbacks.  This bench quantifies that
// diagnosis problem on our benchmark networks using the fault
// dictionary: how many single faults are detectable at all, how many
// syndrome-equivalence classes exist, and the expected candidate-set
// size (ambiguity).  It then shows the flip side of selective hardening:
// hardened primitives cannot fail, so the dictionary shrinks and the
// remaining faults become easier to tell apart.
#include <iostream>

#include "bench_common.hpp"
#include "diag/diagnosis.hpp"
#include "rsn/example_networks.hpp"
#include "support/table.hpp"

int main() {
  using namespace rrsn;
  const std::uint64_t seed = bench::envOrU64("RRSN_SEED", 2022);

  TextTable table({"Design", "universe", "faults", "detectable", "classes",
                   "avg ambiguity"});
  table.setAlign(0, TextTable::Align::Left);
  table.setAlign(1, TextTable::Align::Left);

  for (const char* name : {"fig1", "TreeFlat", "TreeUnbalanced", "q12710"}) {
    const rsn::Network net = std::string(name) == "fig1"
                                 ? rsn::makeFig1Network()
                                 : benchgen::buildBenchmark(name);
    const diag::FaultDictionary dict = diag::FaultDictionary::build(net);

    // Hardening plan: the min-cost @ damage<=10% solution.
    Rng rng(seed);
    const auto cspec = rsn::randomSpec(net, {}, rng);
    const auto analysis = crit::CriticalityAnalyzer(net, cspec).run();
    const auto problem = harden::HardeningProblem::assemble(net, analysis);
    const auto knee = moo::greedyMinCost(
        problem.linear, static_cast<std::uint64_t>(
                            0.10 * static_cast<double>(problem.maxDamage)));
    std::vector<bool> hardened(net.primitiveCount(), false);
    if (knee) {
      for (std::uint32_t idx : knee->genome.indices()) hardened[idx] = true;
    }

    const auto addRow = [&](const char* label,
                            const diag::FaultDictionary::Resolution& r) {
      char amb[32];
      std::snprintf(amb, sizeof amb, "%.2f", r.avgAmbiguity);
      table.addRow({name, label, std::to_string(r.faults),
                    std::to_string(r.detectable), std::to_string(r.classes),
                    amb});
    };
    addRow("all single faults", dict.resolution());
    addRow("after hardening", dict.resolutionExcluding(hardened));
    table.addSeparator();
    std::cout << "." << std::flush;
  }
  std::cout << "\n\nFault diagnosability via the access-outcome dictionary\n"
            << table
            << "\n(detectable faults produce a syndrome different from the "
               "fault-free RSN; 'avg ambiguity' is the expected number of "
               "candidate faults per diagnosis.  Selective hardening "
               "removes the most damaging faults from the universe "
               "entirely — no re-routing and hence no diagnosis is needed "
               "for them, unlike fault-tolerant RSN schemes)\n";
  return 0;
}

// Helpers shared by the benchmark binaries: the per-row Table-I pipeline
// (build network -> random spec -> criticality analysis -> SPEA-2 ->
// solution extraction) and environment-variable knobs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "benchgen/registry.hpp"
#include "crit/analyzer.hpp"
#include "harden/hardening.hpp"
#include "moo/baselines.hpp"
#include "moo/spea2.hpp"
#include "obs/obs.hpp"
#include "support/timer.hpp"

namespace rrsn::bench {

inline std::string envOr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::string(v) : fallback;
}

inline double envOrDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

inline std::uint64_t envOrU64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0'
             ? static_cast<std::uint64_t>(std::atoll(v))
             : fallback;
}

/// Minimal streaming JSON writer for the machine-readable BENCH_*.json
/// artifacts the benches emit next to their text tables, so the perf
/// trajectory (stage timings, thread count, speedups) stays comparable
/// across PRs without parsing ASCII tables.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& beginObject() {
    prefix();
    os_ << '{';
    nested_.push_back(0);
    return *this;
  }
  JsonWriter& endObject() {
    nested_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& beginArray() {
    prefix();
    os_ << '[';
    nested_.push_back(0);
    return *this;
  }
  JsonWriter& endArray() {
    nested_.pop_back();
    os_ << ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    prefix();
    quoted(k);
    os_ << ':';
    afterKey_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    prefix();
    quoted(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    prefix();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    prefix();
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    os_ << buf;
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    prefix();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    prefix();
    os_ << v;
    return *this;
  }

  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

 private:
  void prefix() {
    if (afterKey_) {
      afterKey_ = false;
      return;
    }
    if (!nested_.empty()) {
      if (nested_.back() != 0) os_ << ',';
      nested_.back() = 1;
    }
  }
  void quoted(std::string_view s) {
    os_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<char> nested_;  ///< per nesting level: element written yet?
  bool afterKey_ = false;
};

/// Folds the current observability aggregates into a BENCH_*.json
/// emitter as one "obs" object (counters, span totals in ns, drop and
/// violation accounting).  No-op unless tracing is enabled (RRSN_TRACE=1
/// or obs::enable()), so default bench output is unchanged.  The writer
/// must be positioned inside an object, between members.
inline void writeObsMetrics(JsonWriter& w) {
  if (!obs::enabled()) return;
  const obs::Snapshot snap = obs::snapshot();
  w.key("obs").beginObject();
  w.key("counters").beginObject();
  for (const auto& [id, v] : snap.counters) w.kv(snap.names[id], v);
  w.endObject();
  w.key("span_total_ns").beginObject();
  for (const auto& [id, s] : snap.spans) w.kv(snap.names[id], s.totalNs);
  w.endObject();
  w.kv("dropped_events", snap.droppedEvents);
  w.kv("threads", snap.threadsSeen);
  w.kv("violations", static_cast<std::uint64_t>(snap.violations.size()));
  w.endObject();
}

/// Everything one Table-I row produces.
struct RowResult {
  const benchgen::BenchmarkSpec* spec = nullptr;
  std::uint64_t maxCost = 0;
  std::uint64_t maxDamage = 0;
  std::size_t generationsUsed = 0;
  std::optional<moo::Objectives> minCost;    ///< min cost @ damage <= 10 %
  std::optional<moo::Objectives> minDamage;  ///< min damage @ cost <= 10 %
  double seconds = 0.0;
  std::size_t criticalExposuresMinCost = 0;  ///< must be 0 (paper claim)
};

/// Runs the full pipeline for one benchmark row.
/// `generationScale` scales the paper's generation count (1.0 = full
/// fidelity); the scaled count is floored at 50 generations.
inline RowResult runTable1Row(const benchgen::BenchmarkSpec& spec,
                              double generationScale, std::uint64_t seed) {
  Stopwatch total;
  RowResult row;
  row.spec = &spec;

  const rsn::Network net = benchgen::buildBenchmark(spec);
  Rng rng(seed ^ (std::hash<std::string>{}(spec.name)));
  const rsn::CriticalitySpec cspec = rsn::randomSpec(net, {}, rng);
  const crit::CriticalityResult analysis =
      crit::CriticalityAnalyzer(net, cspec).run();
  const harden::HardeningProblem problem =
      harden::HardeningProblem::assemble(net, analysis);
  row.maxCost = problem.maxCost;
  row.maxDamage = problem.maxDamage;

  moo::EvolutionOptions options;
  options.populationSize = spec.populationSize();
  options.generations = std::max<std::size_t>(
      50, static_cast<std::size_t>(
              static_cast<double>(spec.generations) * generationScale));
  options.seed = seed;
  // Bound the per-genome memory on the million-bit instances
  // (~4 MB/genome at the cap; the machine budget allows dense genomes).
  options.maxInitOnes = 1'000'000;
  row.generationsUsed = options.generations;

  // Diversified initialization: a handful of greedy-ratio prefixes from
  // across the front (see EvolutionOptions::seedGenomes for why).
  {
    const moo::RunResult greedy =
        moo::greedyFront(problem.linear, options.populationSize / 4);
    const auto& members = greedy.archive.members();
    const std::size_t want = std::min<std::size_t>(
        members.size(), options.populationSize / 4);
    for (std::size_t k = 0; k < want; ++k) {
      const std::size_t idx = k * (members.size() - 1) / std::max<std::size_t>(1, want - 1);
      options.seedGenomes.push_back(members[idx].genome);
    }
  }

  const moo::RunResult result = moo::runSpea2(problem.linear, options);
  const harden::PaperSolutions sols =
      harden::extractPaperSolutions(result.archive, problem);
  if (sols.minCost) row.minCost = sols.minCost->obj;
  if (sols.minDamage) row.minDamage = sols.minDamage->obj;

  row.seconds = total.seconds();
  return row;
}

}  // namespace rrsn::bench

file(REMOVE_RECURSE
  "librrsn_support.a"
)

# Empty dependencies file for rrsn_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rrsn_support.dir/bitset.cpp.o"
  "CMakeFiles/rrsn_support.dir/bitset.cpp.o.d"
  "CMakeFiles/rrsn_support.dir/rng.cpp.o"
  "CMakeFiles/rrsn_support.dir/rng.cpp.o.d"
  "CMakeFiles/rrsn_support.dir/strings.cpp.o"
  "CMakeFiles/rrsn_support.dir/strings.cpp.o.d"
  "CMakeFiles/rrsn_support.dir/table.cpp.o"
  "CMakeFiles/rrsn_support.dir/table.cpp.o.d"
  "librrsn_support.a"
  "librrsn_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rrsn_sp.dir/decomposition.cpp.o"
  "CMakeFiles/rrsn_sp.dir/decomposition.cpp.o.d"
  "CMakeFiles/rrsn_sp.dir/sp_reduce.cpp.o"
  "CMakeFiles/rrsn_sp.dir/sp_reduce.cpp.o.d"
  "librrsn_sp.a"
  "librrsn_sp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_sp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

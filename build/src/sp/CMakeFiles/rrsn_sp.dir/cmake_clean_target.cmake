file(REMOVE_RECURSE
  "librrsn_sp.a"
)

# Empty compiler generated dependencies file for rrsn_sp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librrsn_fault.a"
)

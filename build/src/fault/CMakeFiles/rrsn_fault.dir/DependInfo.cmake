
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/effects.cpp" "src/fault/CMakeFiles/rrsn_fault.dir/effects.cpp.o" "gcc" "src/fault/CMakeFiles/rrsn_fault.dir/effects.cpp.o.d"
  "/root/repo/src/fault/fault.cpp" "src/fault/CMakeFiles/rrsn_fault.dir/fault.cpp.o" "gcc" "src/fault/CMakeFiles/rrsn_fault.dir/fault.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rsn/CMakeFiles/rrsn_rsn.dir/DependInfo.cmake"
  "/root/repo/build/src/sp/CMakeFiles/rrsn_sp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rrsn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rrsn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/rrsn_fault.dir/effects.cpp.o"
  "CMakeFiles/rrsn_fault.dir/effects.cpp.o.d"
  "CMakeFiles/rrsn_fault.dir/fault.cpp.o"
  "CMakeFiles/rrsn_fault.dir/fault.cpp.o.d"
  "librrsn_fault.a"
  "librrsn_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

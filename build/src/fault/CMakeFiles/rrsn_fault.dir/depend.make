# Empty dependencies file for rrsn_fault.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for rrsn_fault.
# This may be replaced when dependencies are built.

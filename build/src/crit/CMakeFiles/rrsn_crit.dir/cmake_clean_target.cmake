file(REMOVE_RECURSE
  "librrsn_crit.a"
)

# Empty compiler generated dependencies file for rrsn_crit.
# This may be replaced when dependencies are built.

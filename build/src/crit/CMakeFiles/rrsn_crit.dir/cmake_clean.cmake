file(REMOVE_RECURSE
  "CMakeFiles/rrsn_crit.dir/analyzer.cpp.o"
  "CMakeFiles/rrsn_crit.dir/analyzer.cpp.o.d"
  "librrsn_crit.a"
  "librrsn_crit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_crit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

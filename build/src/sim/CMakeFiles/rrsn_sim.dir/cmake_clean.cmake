file(REMOVE_RECURSE
  "CMakeFiles/rrsn_sim.dir/retarget.cpp.o"
  "CMakeFiles/rrsn_sim.dir/retarget.cpp.o.d"
  "CMakeFiles/rrsn_sim.dir/simulator.cpp.o"
  "CMakeFiles/rrsn_sim.dir/simulator.cpp.o.d"
  "librrsn_sim.a"
  "librrsn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

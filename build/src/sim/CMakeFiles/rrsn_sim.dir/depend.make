# Empty dependencies file for rrsn_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librrsn_sim.a"
)

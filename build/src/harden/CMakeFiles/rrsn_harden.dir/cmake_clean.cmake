file(REMOVE_RECURSE
  "CMakeFiles/rrsn_harden.dir/fault_tolerant.cpp.o"
  "CMakeFiles/rrsn_harden.dir/fault_tolerant.cpp.o.d"
  "CMakeFiles/rrsn_harden.dir/hardening.cpp.o"
  "CMakeFiles/rrsn_harden.dir/hardening.cpp.o.d"
  "librrsn_harden.a"
  "librrsn_harden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_harden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rrsn_harden.
# This may be replaced when dependencies are built.

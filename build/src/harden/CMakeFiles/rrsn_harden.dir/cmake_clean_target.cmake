file(REMOVE_RECURSE
  "librrsn_harden.a"
)

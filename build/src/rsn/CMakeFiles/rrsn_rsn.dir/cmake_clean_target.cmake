file(REMOVE_RECURSE
  "librrsn_rsn.a"
)

# Empty dependencies file for rrsn_rsn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rrsn_rsn.dir/builder.cpp.o"
  "CMakeFiles/rrsn_rsn.dir/builder.cpp.o.d"
  "CMakeFiles/rrsn_rsn.dir/example_networks.cpp.o"
  "CMakeFiles/rrsn_rsn.dir/example_networks.cpp.o.d"
  "CMakeFiles/rrsn_rsn.dir/graph_view.cpp.o"
  "CMakeFiles/rrsn_rsn.dir/graph_view.cpp.o.d"
  "CMakeFiles/rrsn_rsn.dir/netlist_io.cpp.o"
  "CMakeFiles/rrsn_rsn.dir/netlist_io.cpp.o.d"
  "CMakeFiles/rrsn_rsn.dir/network.cpp.o"
  "CMakeFiles/rrsn_rsn.dir/network.cpp.o.d"
  "CMakeFiles/rrsn_rsn.dir/spec.cpp.o"
  "CMakeFiles/rrsn_rsn.dir/spec.cpp.o.d"
  "CMakeFiles/rrsn_rsn.dir/structure.cpp.o"
  "CMakeFiles/rrsn_rsn.dir/structure.cpp.o.d"
  "librrsn_rsn.a"
  "librrsn_rsn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_rsn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rsn/builder.cpp" "src/rsn/CMakeFiles/rrsn_rsn.dir/builder.cpp.o" "gcc" "src/rsn/CMakeFiles/rrsn_rsn.dir/builder.cpp.o.d"
  "/root/repo/src/rsn/example_networks.cpp" "src/rsn/CMakeFiles/rrsn_rsn.dir/example_networks.cpp.o" "gcc" "src/rsn/CMakeFiles/rrsn_rsn.dir/example_networks.cpp.o.d"
  "/root/repo/src/rsn/graph_view.cpp" "src/rsn/CMakeFiles/rrsn_rsn.dir/graph_view.cpp.o" "gcc" "src/rsn/CMakeFiles/rrsn_rsn.dir/graph_view.cpp.o.d"
  "/root/repo/src/rsn/netlist_io.cpp" "src/rsn/CMakeFiles/rrsn_rsn.dir/netlist_io.cpp.o" "gcc" "src/rsn/CMakeFiles/rrsn_rsn.dir/netlist_io.cpp.o.d"
  "/root/repo/src/rsn/network.cpp" "src/rsn/CMakeFiles/rrsn_rsn.dir/network.cpp.o" "gcc" "src/rsn/CMakeFiles/rrsn_rsn.dir/network.cpp.o.d"
  "/root/repo/src/rsn/spec.cpp" "src/rsn/CMakeFiles/rrsn_rsn.dir/spec.cpp.o" "gcc" "src/rsn/CMakeFiles/rrsn_rsn.dir/spec.cpp.o.d"
  "/root/repo/src/rsn/structure.cpp" "src/rsn/CMakeFiles/rrsn_rsn.dir/structure.cpp.o" "gcc" "src/rsn/CMakeFiles/rrsn_rsn.dir/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rrsn_support.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rrsn_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

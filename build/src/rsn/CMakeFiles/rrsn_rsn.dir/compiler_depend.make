# Empty compiler generated dependencies file for rrsn_rsn.
# This may be replaced when dependencies are built.

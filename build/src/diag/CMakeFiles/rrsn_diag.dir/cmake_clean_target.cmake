file(REMOVE_RECURSE
  "librrsn_diag.a"
)

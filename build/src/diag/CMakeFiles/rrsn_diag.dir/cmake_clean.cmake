file(REMOVE_RECURSE
  "CMakeFiles/rrsn_diag.dir/diagnosis.cpp.o"
  "CMakeFiles/rrsn_diag.dir/diagnosis.cpp.o.d"
  "librrsn_diag.a"
  "librrsn_diag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_diag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

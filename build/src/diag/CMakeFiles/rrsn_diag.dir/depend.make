# Empty dependencies file for rrsn_diag.
# This may be replaced when dependencies are built.

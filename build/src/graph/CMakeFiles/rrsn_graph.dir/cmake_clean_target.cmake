file(REMOVE_RECURSE
  "librrsn_graph.a"
)

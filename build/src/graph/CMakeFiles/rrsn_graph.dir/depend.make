# Empty dependencies file for rrsn_graph.
# This may be replaced when dependencies are built.

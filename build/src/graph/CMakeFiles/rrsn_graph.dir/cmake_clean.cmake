file(REMOVE_RECURSE
  "CMakeFiles/rrsn_graph.dir/digraph.cpp.o"
  "CMakeFiles/rrsn_graph.dir/digraph.cpp.o.d"
  "librrsn_graph.a"
  "librrsn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

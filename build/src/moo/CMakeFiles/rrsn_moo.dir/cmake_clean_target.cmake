file(REMOVE_RECURSE
  "librrsn_moo.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rrsn_moo.dir/baselines.cpp.o"
  "CMakeFiles/rrsn_moo.dir/baselines.cpp.o.d"
  "CMakeFiles/rrsn_moo.dir/ea_common.cpp.o"
  "CMakeFiles/rrsn_moo.dir/ea_common.cpp.o.d"
  "CMakeFiles/rrsn_moo.dir/genome.cpp.o"
  "CMakeFiles/rrsn_moo.dir/genome.cpp.o.d"
  "CMakeFiles/rrsn_moo.dir/nsga2.cpp.o"
  "CMakeFiles/rrsn_moo.dir/nsga2.cpp.o.d"
  "CMakeFiles/rrsn_moo.dir/pareto.cpp.o"
  "CMakeFiles/rrsn_moo.dir/pareto.cpp.o.d"
  "CMakeFiles/rrsn_moo.dir/spea2.cpp.o"
  "CMakeFiles/rrsn_moo.dir/spea2.cpp.o.d"
  "librrsn_moo.a"
  "librrsn_moo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_moo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rrsn_moo.
# This may be replaced when dependencies are built.

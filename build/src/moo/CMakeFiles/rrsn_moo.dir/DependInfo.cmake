
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moo/baselines.cpp" "src/moo/CMakeFiles/rrsn_moo.dir/baselines.cpp.o" "gcc" "src/moo/CMakeFiles/rrsn_moo.dir/baselines.cpp.o.d"
  "/root/repo/src/moo/ea_common.cpp" "src/moo/CMakeFiles/rrsn_moo.dir/ea_common.cpp.o" "gcc" "src/moo/CMakeFiles/rrsn_moo.dir/ea_common.cpp.o.d"
  "/root/repo/src/moo/genome.cpp" "src/moo/CMakeFiles/rrsn_moo.dir/genome.cpp.o" "gcc" "src/moo/CMakeFiles/rrsn_moo.dir/genome.cpp.o.d"
  "/root/repo/src/moo/nsga2.cpp" "src/moo/CMakeFiles/rrsn_moo.dir/nsga2.cpp.o" "gcc" "src/moo/CMakeFiles/rrsn_moo.dir/nsga2.cpp.o.d"
  "/root/repo/src/moo/pareto.cpp" "src/moo/CMakeFiles/rrsn_moo.dir/pareto.cpp.o" "gcc" "src/moo/CMakeFiles/rrsn_moo.dir/pareto.cpp.o.d"
  "/root/repo/src/moo/spea2.cpp" "src/moo/CMakeFiles/rrsn_moo.dir/spea2.cpp.o" "gcc" "src/moo/CMakeFiles/rrsn_moo.dir/spea2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rrsn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for rrsn_benchgen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rrsn_benchgen.dir/generators.cpp.o"
  "CMakeFiles/rrsn_benchgen.dir/generators.cpp.o.d"
  "CMakeFiles/rrsn_benchgen.dir/registry.cpp.o"
  "CMakeFiles/rrsn_benchgen.dir/registry.cpp.o.d"
  "librrsn_benchgen.a"
  "librrsn_benchgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_benchgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librrsn_benchgen.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/bench_spec_placement.dir/bench_spec_placement.cpp.o"
  "CMakeFiles/bench_spec_placement.dir/bench_spec_placement.cpp.o.d"
  "bench_spec_placement"
  "bench_spec_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spec_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_spec_placement.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_diagnosis.
# This may be replaced when dependencies are built.

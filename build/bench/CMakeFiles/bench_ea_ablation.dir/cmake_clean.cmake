file(REMOVE_RECURSE
  "CMakeFiles/bench_ea_ablation.dir/bench_ea_ablation.cpp.o"
  "CMakeFiles/bench_ea_ablation.dir/bench_ea_ablation.cpp.o.d"
  "bench_ea_ablation"
  "bench_ea_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ea_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ea_ablation.
# This may be replaced when dependencies are built.

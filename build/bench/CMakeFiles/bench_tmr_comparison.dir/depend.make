# Empty dependencies file for bench_tmr_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_tmr_comparison.dir/bench_tmr_comparison.cpp.o"
  "CMakeFiles/bench_tmr_comparison.dir/bench_tmr_comparison.cpp.o.d"
  "bench_tmr_comparison"
  "bench_tmr_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tmr_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_control_dependency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_control_dependency.dir/bench_control_dependency.cpp.o"
  "CMakeFiles/bench_control_dependency.dir/bench_control_dependency.cpp.o.d"
  "bench_control_dependency"
  "bench_control_dependency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_control_dependency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rrsn_tool.
# This may be replaced when dependencies are built.

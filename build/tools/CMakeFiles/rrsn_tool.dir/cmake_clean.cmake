file(REMOVE_RECURSE
  "CMakeFiles/rrsn_tool.dir/rrsn_tool.cpp.o"
  "CMakeFiles/rrsn_tool.dir/rrsn_tool.cpp.o.d"
  "rrsn_tool"
  "rrsn_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrsn_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(graph_test "/root/repo/build/tests/graph_test")
set_tests_properties(graph_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;14;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rsn_test "/root/repo/build/tests/rsn_test")
set_tests_properties(rsn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;15;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sp_test "/root/repo/build/tests/sp_test")
set_tests_properties(sp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;16;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(fault_test "/root/repo/build/tests/fault_test")
set_tests_properties(fault_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(crit_test "/root/repo/build/tests/crit_test")
set_tests_properties(crit_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;18;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(moo_test "/root/repo/build/tests/moo_test")
set_tests_properties(moo_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;19;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(harden_test "/root/repo/build/tests/harden_test")
set_tests_properties(harden_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;20;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;21;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(benchgen_test "/root/repo/build/tests/benchgen_test")
set_tests_properties(benchgen_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;22;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(diag_test "/root/repo/build/tests/diag_test")
set_tests_properties(diag_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;23;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;24;rrsn_add_test;/root/repo/tests/CMakeLists.txt;0;")

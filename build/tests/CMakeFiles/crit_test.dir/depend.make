# Empty dependencies file for crit_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/harden_test.cpp" "tests/CMakeFiles/harden_test.dir/harden_test.cpp.o" "gcc" "tests/CMakeFiles/harden_test.dir/harden_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchgen/CMakeFiles/rrsn_benchgen.dir/DependInfo.cmake"
  "/root/repo/build/src/diag/CMakeFiles/rrsn_diag.dir/DependInfo.cmake"
  "/root/repo/build/src/harden/CMakeFiles/rrsn_harden.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rrsn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/moo/CMakeFiles/rrsn_moo.dir/DependInfo.cmake"
  "/root/repo/build/src/crit/CMakeFiles/rrsn_crit.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/rrsn_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/sp/CMakeFiles/rrsn_sp.dir/DependInfo.cmake"
  "/root/repo/build/src/rsn/CMakeFiles/rrsn_rsn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/rrsn_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/rrsn_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/rsn_test.dir/rsn_test.cpp.o"
  "CMakeFiles/rsn_test.dir/rsn_test.cpp.o.d"
  "rsn_test"
  "rsn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

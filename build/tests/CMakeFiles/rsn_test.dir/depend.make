# Empty dependencies file for rsn_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/moo_test.dir/moo_test.cpp.o"
  "CMakeFiles/moo_test.dir/moo_test.cpp.o.d"
  "moo_test"
  "moo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

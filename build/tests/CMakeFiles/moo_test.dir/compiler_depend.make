# Empty compiler generated dependencies file for moo_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/runtime_monitoring.dir/runtime_monitoring.cpp.o"
  "CMakeFiles/runtime_monitoring.dir/runtime_monitoring.cpp.o.d"
  "runtime_monitoring"
  "runtime_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

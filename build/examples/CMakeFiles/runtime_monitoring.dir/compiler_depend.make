# Empty compiler generated dependencies file for runtime_monitoring.
# This may be replaced when dependencies are built.

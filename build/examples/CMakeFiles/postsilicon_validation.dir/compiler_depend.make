# Empty compiler generated dependencies file for postsilicon_validation.
# This may be replaced when dependencies are built.

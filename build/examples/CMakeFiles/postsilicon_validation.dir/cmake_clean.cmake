file(REMOVE_RECURSE
  "CMakeFiles/postsilicon_validation.dir/postsilicon_validation.cpp.o"
  "CMakeFiles/postsilicon_validation.dir/postsilicon_validation.cpp.o.d"
  "postsilicon_validation"
  "postsilicon_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postsilicon_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/pattern_compatibility.dir/pattern_compatibility.cpp.o"
  "CMakeFiles/pattern_compatibility.dir/pattern_compatibility.cpp.o.d"
  "pattern_compatibility"
  "pattern_compatibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_compatibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

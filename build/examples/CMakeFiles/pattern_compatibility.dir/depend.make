# Empty dependencies file for pattern_compatibility.
# This may be replaced when dependencies are built.
